package broadcast

import (
	"fmt"
	"sync"

	"noisyradio/internal/graph"
	"noisyradio/internal/radio"
	"noisyradio/internal/rlnc"
)

// Network pools, one per payload type. Monte-Carlo trials re-execute the
// same schedule over the same (graph, config) thousands of times; pooling
// lets a trial inherit the previous trial's network scratch (Θ(n) of
// adjacency counters and fault buffers) instead of reallocating it.
// radio.Network.Reset guarantees a pooled network is observably identical
// to a fresh one, so results are unchanged (see the radio pool tests).
var (
	sigPool  radio.Pool[struct{}]
	idPool   radio.Pool[int32]
	rlncPool radio.Pool[rlnc.Packet]
)

// topoCache memoizes the deterministic topologies that the multi-message
// schedules otherwise rebuild from scratch on every trial (stars, paths,
// the single link). Values are graph.Topology; graphs are immutable and
// safe to share across concurrent trials. The cache only ever holds one
// entry per distinct size actually swept, so growth is bounded by the
// experiment configurations in play.
var topoCache sync.Map // string -> graph.Topology

func cachedTopology(key string, build func() graph.Topology) graph.Topology {
	if v, ok := topoCache.Load(key); ok {
		return v.(graph.Topology)
	}
	v, _ := topoCache.LoadOrStore(key, build())
	return v.(graph.Topology)
}

func cachedStar(leaves int) graph.Topology {
	return cachedTopology(fmt.Sprintf("star/%d", leaves), func() graph.Topology { return graph.Star(leaves) })
}

func cachedPath(n int) graph.Topology {
	return cachedTopology(fmt.Sprintf("path/%d", n), func() graph.Topology { return graph.Path(n) })
}

func cachedSingleLink() graph.Topology {
	return cachedTopology("single-link", graph.SingleLink)
}
