package broadcast

// The FASTBC family's correctness rests on a structural claim (Sections
// 3.4.2 and 4.1): fast nodes scheduled in the same fast round never
// interfere at their intended receivers, because same-rank fast nodes sit
// 6·rmax levels apart (and the GBST property allows only one per (level,
// rank)), different-rank fast nodes sit >= 6 levels apart, and a BFS
// decomposition has no edges across two or more levels. These tests verify
// the claim exhaustively on random graphs: in the worst case where *every*
// node is informed, each scheduled node's fast child hears exactly one
// broadcaster.

import (
	"testing"
	"testing/quick"

	"noisyradio/internal/gbst"
	"noisyradio/internal/graph"
	"noisyradio/internal/rng"
)

// fastbcScheduled returns the fast nodes broadcasting in fast round t under
// FASTBC's slot rule.
func fastbcScheduled(tree *gbst.Tree, t int) []int32 {
	period := 6 * tree.MaxRank
	var out []int32
	for v := 0; v < tree.N(); v++ {
		if !tree.IsFast(v) {
			continue
		}
		s := (int(tree.Level[v]) - 6*int(tree.Rank[v])) % period
		if s < 0 {
			s += period
		}
		if s == t%period {
			out = append(out, int32(v))
		}
	}
	return out
}

// robustScheduled returns the fast nodes broadcasting in even round t under
// Robust FASTBC's block rule with block size S and multiplier c.
func robustScheduled(tree *gbst.Tree, t, s, c int) []int32 {
	period := 6 * tree.MaxRank
	cS := c * s
	active := (t / 2 / cS) % period
	var out []int32
	for v := 0; v < tree.N(); v++ {
		if !tree.IsFast(v) {
			continue
		}
		slot := (int(tree.Level[v])/s - 6*int(tree.Rank[v])) % period
		if slot < 0 {
			slot += period
		}
		if slot == active && int(tree.Level[v])%3 == t%3 {
			out = append(out, int32(v))
		}
	}
	return out
}

// assertNoInterference checks every scheduled node's fast child hears
// exactly one broadcaster among the scheduled set.
func assertNoInterference(t *testing.T, g *graph.Graph, tree *gbst.Tree, scheduled []int32, context string) {
	t.Helper()
	isTx := make(map[int32]bool, len(scheduled))
	for _, v := range scheduled {
		isTx[v] = true
	}
	for _, v := range scheduled {
		child := tree.FastChild[v]
		if isTx[child] {
			t.Fatalf("%s: intended receiver %d is itself broadcasting", context, child)
		}
		count := 0
		for _, u := range g.Neighbors(int(child)) {
			if isTx[u] {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("%s: fast child %d of %d hears %d broadcasters, want 1", context, child, v, count)
		}
	}
}

func TestFASTBCWaveNonInterference(t *testing.T) {
	r := rng.New(61)
	tops := []graph.Topology{
		graph.Grid(10, 10),
		graph.Lollipop(6, 80),
		graph.GNP(150, 0.03, r.Split()),
		graph.Caterpillar(20, 2),
	}
	for _, top := range tops {
		tree, err := gbst.Build(top.G, top.Source)
		if err != nil {
			t.Fatal(err)
		}
		period := 6 * tree.MaxRank
		for tt := 0; tt < period; tt++ {
			assertNoInterference(t, top.G, tree, fastbcScheduled(tree, tt), top.Name)
		}
	}
}

func TestRobustFASTBCWaveNonInterference(t *testing.T) {
	r := rng.New(62)
	tops := []graph.Topology{
		graph.Grid(10, 10),
		graph.Lollipop(6, 80),
		graph.GNP(150, 0.03, r.Split()),
	}
	const s, c = 3, 5
	for _, top := range tops {
		tree, err := gbst.Build(top.G, top.Source)
		if err != nil {
			t.Fatal(err)
		}
		period := 6 * tree.MaxRank
		// One full wave cycle of even rounds.
		for tt := 0; tt < 2*period*c*s; tt += 2 {
			assertNoInterference(t, top.G, tree, robustScheduled(tree, tt, s, c), top.Name)
		}
	}
}

// Property: non-interference holds on arbitrary random connected graphs for
// both schedules.
func TestQuickWaveNonInterference(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%80 + 5
		top := graph.GNP(n, 3.0/float64(n), rng.New(seed))
		tree, err := gbst.Build(top.G, top.Source)
		if err != nil {
			return false
		}
		period := 6 * tree.MaxRank
		check := func(scheduled []int32) bool {
			isTx := make(map[int32]bool, len(scheduled))
			for _, v := range scheduled {
				isTx[v] = true
			}
			for _, v := range scheduled {
				child := tree.FastChild[v]
				if isTx[child] {
					return false
				}
				count := 0
				for _, u := range top.G.Neighbors(int(child)) {
					if isTx[u] {
						count++
					}
				}
				if count != 1 {
					return false
				}
			}
			return true
		}
		for tt := 0; tt < period; tt++ {
			if !check(fastbcScheduled(tree, tt)) {
				return false
			}
		}
		for tt := 0; tt < 2*period*10; tt += 2 {
			if !check(robustScheduled(tree, tt, 2, 5)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
