// The first-class Schedule API: every broadcast schedule of the paper is
// one registry entry carrying its name, paper reference, result kind and
// both execution strategies (the scalar runner and its lockstep
// trial-batched twin). Callers — the experiment runners, the throughput
// harness, cmd/noisysim and the public facade — select a schedule by name
// and Run it; whether a set of trials executes scalar or as a W-wide
// lockstep batch is an execution-plan detail (see sim.Sweep.AddSchedule),
// not a caller-visible API fork. The registry mirrors experiments.Registry:
// one entry per schedule, discoverable, and backed by the shared
// marker-interface (single-message) and multiLane (multi-message)
// machinery that guarantees scalar and batch execution are identical by
// construction.
package broadcast

import (
	"fmt"
	"sort"

	"noisyradio/internal/graph"
	"noisyradio/internal/radio"
	"noisyradio/internal/rng"
)

// ScheduleKind distinguishes the result shapes of the registry.
type ScheduleKind int

const (
	// SingleMessage schedules broadcast one message; Outcome.Done counts
	// informed nodes.
	SingleMessage ScheduleKind = iota + 1
	// MultiMessage schedules broadcast K messages; Outcome.Done counts
	// nodes holding (or having decoded) all K.
	MultiMessage
)

// String returns a short human-readable kind name.
func (k ScheduleKind) String() string {
	switch k {
	case SingleMessage:
		return "single-message"
	case MultiMessage:
		return "multi-message"
	default:
		return fmt.Sprintf("ScheduleKind(%d)", int(k))
	}
}

// ScheduleParams is the union of schedule-specific parameters. Every entry
// documents which fields it reads; unread fields are ignored, and the zero
// value selects each schedule's defaults. Schedules that synthesise their
// own topology (stars, the single link, the pipelined paths) ignore the
// topology passed to Run.
type ScheduleParams struct {
	// K is the message count of the multi-message schedules.
	K int
	// Leaves sizes the star schedules' topology.
	Leaves int
	// PathLen sizes the path-pipeline and transformed-path schedules.
	PathLen int
	// Repeats is the per-message repetition count of the non-adaptive
	// single-link schedule; <= 0 selects DefaultSingleLinkRepeats(K, cfg.P).
	Repeats int
	// WCT is the worst-case topology instance of the WCT schedules.
	WCT *graph.WCT
	// Pattern selects the RLNC broadcast pattern; 0 selects RLNCDecay.
	Pattern RLNCPattern
	// PayloadLen is the RLNC message payload length in bytes; <= 0
	// selects 8 (the experiments' O(log nk)-bit message stand-in).
	PayloadLen int
	// Robust tunes Robust FASTBC.
	Robust RobustParams
	// Transform tunes the Lemma 25/26 meta-round transformations.
	Transform TransformParams
	// RLNC tunes coded multi-message broadcast.
	RLNC RLNCOptions
	// Options tunes round caps and tracing.
	Options Options
}

func (p ScheduleParams) pattern() RLNCPattern {
	if p.Pattern == 0 {
		return RLNCDecay
	}
	return p.Pattern
}

func (p ScheduleParams) payloadLen() int {
	if p.PayloadLen <= 0 {
		return 8
	}
	return p.PayloadLen
}

// Outcome is the unified result of one schedule execution.
type Outcome struct {
	// Rounds is the number of rounds executed until success or the cap.
	Rounds int
	// Success reports whether the broadcast completed before the cap.
	Success bool
	// Done counts the nodes that finished: informed nodes for
	// single-message schedules, nodes holding all K messages for
	// multi-message ones.
	Done int
	// Channel holds channel-level accounting from the radio engine.
	Channel radio.Stats
}

// AsResult converts a single-message outcome back to the legacy Result.
func (o Outcome) AsResult() Result {
	return Result{Rounds: o.Rounds, Success: o.Success, Informed: o.Done, Channel: o.Channel}
}

// AsMultiResult converts a multi-message outcome back to the legacy
// MultiResult.
func (o Outcome) AsMultiResult() MultiResult {
	return MultiResult{Rounds: o.Rounds, Success: o.Success, Done: o.Done, Channel: o.Channel}
}

func singleOutcome(r Result) Outcome {
	return Outcome{Rounds: r.Rounds, Success: r.Success, Done: r.Informed, Channel: r.Channel}
}

func multiOutcome(r MultiResult) Outcome {
	return Outcome{Rounds: r.Rounds, Success: r.Success, Done: r.Done, Channel: r.Channel}
}

func singleOutcomes(rs []Result, err error) ([]Outcome, error) {
	if err != nil {
		return nil, err
	}
	out := make([]Outcome, len(rs))
	for i, r := range rs {
		out[i] = singleOutcome(r)
	}
	return out, nil
}

func multiOutcomes(rs []MultiResult, err error) ([]Outcome, error) {
	if err != nil {
		return nil, err
	}
	out := make([]Outcome, len(rs))
	for i, r := range rs {
		out[i] = multiOutcome(r)
	}
	return out, nil
}

// Schedule is one registered broadcast schedule: metadata plus both
// execution strategies. Values are obtained from Schedules or
// LookupSchedule and are immutable.
type Schedule struct {
	// Name is the registry key, e.g. "decay" or "star-coding".
	Name string
	// Ref is the paper reference the schedule reproduces.
	Ref string
	// Kind is the result shape (single- or multi-message).
	Kind ScheduleKind

	// scalarName/batchName are the exported function names the entry wraps;
	// the registry completeness test checks every schedule-shaped exported
	// function of the package appears in exactly one entry.
	scalarName, batchName string

	// planTop returns the topology the schedule actually runs on (the
	// passed topology, or the entry's synthesised one), for execution
	// planners that need to resolve the radio engine before running. A
	// zero topology means "unknown".
	planTop func(top graph.Topology, p ScheduleParams) graph.Topology

	run      func(top graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (Outcome, error)
	runBatch func(top graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]Outcome, error)
}

// Run executes one trial of the schedule under the given randomness —
// exactly the underlying scalar function (same draws, same rounds, same
// statistics), with the outcome in unified form.
func (s *Schedule) Run(top graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (Outcome, error) {
	return s.run(top, cfg, r, p)
}

// RunBatch executes one independent trial per stream in rnds, in lockstep
// on a trial-batched radio network where profitable; outcome i is
// identical to Run over rnds[i] (the batch twins' contract, enforced by
// the package tests).
func (s *Schedule) RunBatch(top graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]Outcome, error) {
	return s.runBatch(top, cfg, rnds, p)
}

// PlanTopology returns the topology the schedule would execute on given
// these arguments: the passed topology for topology-taking schedules, the
// synthesised one (star, single link, pipelined path) otherwise. Execution
// planners use it to resolve the radio engine without running anything; a
// zero topology (nil graph) means the answer is unknown.
func (s *Schedule) PlanTopology(top graph.Topology, p ScheduleParams) graph.Topology {
	return s.planTop(top, p)
}

// passedTop is the planTop of schedules that run on the caller's topology.
func passedTop(top graph.Topology, _ ScheduleParams) graph.Topology { return top }

// singleEntry builds a registry entry for a single-message schedule pair.
func singleEntry(name, ref string, scalarName, batchName string,
	run func(top graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (Result, error),
	batch func(top graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]Result, error)) *Schedule {
	return &Schedule{
		Name: name, Ref: ref, Kind: SingleMessage,
		scalarName: scalarName, batchName: batchName,
		planTop: passedTop,
		run: func(top graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (Outcome, error) {
			res, err := run(top, cfg, r, p)
			if err != nil {
				return Outcome{}, err
			}
			return singleOutcome(res), nil
		},
		runBatch: func(top graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]Outcome, error) {
			return singleOutcomes(batch(top, cfg, rnds, p))
		},
	}
}

// multiEntry builds a registry entry for a multi-message schedule pair.
func multiEntry(name, ref string, scalarName, batchName string,
	planTop func(top graph.Topology, p ScheduleParams) graph.Topology,
	run func(top graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error),
	batch func(top graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error)) *Schedule {
	return &Schedule{
		Name: name, Ref: ref, Kind: MultiMessage,
		scalarName: scalarName, batchName: batchName,
		planTop: planTop,
		run: func(top graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (Outcome, error) {
			res, err := run(top, cfg, r, p)
			if err != nil {
				return Outcome{}, err
			}
			return multiOutcome(res), nil
		},
		runBatch: func(top graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]Outcome, error) {
			return multiOutcomes(batch(top, cfg, rnds, p))
		},
	}
}

// resolveRepeats applies the Lemma 29 default repetition count to the
// zero value; negative values pass through so the schedule's own
// validation rejects them.
func resolveRepeats(p ScheduleParams, cfg radio.Config) int {
	if p.Repeats != 0 {
		return p.Repeats
	}
	return DefaultSingleLinkRepeats(p.K, cfg.P)
}

// schedules is the registry, one entry per broadcast schedule, in paper
// order: the single-message algorithms of Section 4.1, coded and naive
// multi-message broadcast of Section 4.2, then the throughput-gap routing
// and coding schedules of Section 5 and the appendices.
var schedules = []*Schedule{
	singleEntry("decay", "Lemmas 6/9", "Decay", "DecayBatch",
		func(top graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (Result, error) {
			return Decay(top, cfg, r, p.Options)
		},
		func(top graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]Result, error) {
			return DecayBatch(top, cfg, rnds, p.Options)
		}),
	singleEntry("decay-unknown-n", "Lemma 9 extension (unknown n)", "DecayUnknownN", "DecayUnknownNBatch",
		func(top graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (Result, error) {
			return DecayUnknownN(top, cfg, r, p.Options)
		},
		func(top graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]Result, error) {
			return DecayUnknownNBatch(top, cfg, rnds, p.Options)
		}),
	singleEntry("fastbc", "Lemmas 8/10", "FASTBC", "FASTBCBatch",
		func(top graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (Result, error) {
			return FASTBC(top, cfg, r, p.Options)
		},
		func(top graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]Result, error) {
			return FASTBCBatch(top, cfg, rnds, p.Options)
		}),
	singleEntry("robust-fastbc", "Theorem 11", "RobustFASTBC", "RobustFASTBCBatch",
		func(top graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (Result, error) {
			return RobustFASTBC(top, cfg, r, p.Options, p.Robust)
		},
		func(top graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]Result, error) {
			return RobustFASTBCBatch(top, cfg, rnds, p.Options, p.Robust)
		}),
	multiEntry("rlnc", "Lemmas 12-13", "RLNCBroadcast", "RLNCBroadcastBatch", passedTop,
		func(top graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error) {
			if p.K < 1 {
				return MultiResult{}, fmt.Errorf("broadcast: rlnc needs K >= 1, got %d", p.K)
			}
			msgs := RandomMessages(p.K, p.payloadLen(), r)
			res, _, err := RLNCBroadcast(top, cfg, msgs, p.pattern(), r, p.RLNC)
			return res, err
		},
		func(top graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error) {
			if p.K < 1 {
				return nil, fmt.Errorf("broadcast: rlnc needs K >= 1, got %d", p.K)
			}
			messages := make([][][]byte, len(rnds))
			for i, r := range rnds {
				messages[i] = RandomMessages(p.K, p.payloadLen(), r)
			}
			return RLNCBroadcastBatch(top, cfg, messages, p.pattern(), rnds, p.RLNC)
		}),
	multiEntry("sequential-decay-routing", "Section 4.2 baseline", "SequentialDecayRouting", "SequentialDecayRoutingBatch", passedTop,
		func(top graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error) {
			return SequentialDecayRouting(top, cfg, p.K, r, p.Options)
		},
		func(top graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error) {
			return SequentialDecayRoutingBatch(top, cfg, p.K, rnds, p.Options)
		}),
	multiEntry("star-routing", "Lemma 15", "StarRouting", "StarRoutingBatch",
		func(_ graph.Topology, p ScheduleParams) graph.Topology {
			if p.Leaves < 1 {
				return graph.Topology{}
			}
			return cachedStar(p.Leaves)
		},
		func(_ graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error) {
			return StarRouting(p.Leaves, p.K, cfg, r, p.Options)
		},
		func(_ graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error) {
			return StarRoutingBatch(p.Leaves, p.K, cfg, rnds, p.Options)
		}),
	multiEntry("star-coding", "Lemma 16", "StarCoding", "StarCodingBatch",
		func(_ graph.Topology, p ScheduleParams) graph.Topology {
			if p.Leaves < 1 {
				return graph.Topology{}
			}
			return cachedStar(p.Leaves)
		},
		func(_ graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error) {
			return StarCoding(p.Leaves, p.K, cfg, r, p.Options)
		},
		func(_ graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error) {
			return StarCodingBatch(p.Leaves, p.K, cfg, rnds, p.Options)
		}),
	multiEntry("wct-routing", "Lemmas 19/21/22", "WCTRouting", "WCTRoutingBatch", wctPlanTop,
		func(_ graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error) {
			if p.WCT == nil {
				return MultiResult{}, errNilWCT
			}
			return WCTRouting(p.WCT, p.K, cfg, r, p.Options)
		},
		func(_ graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error) {
			if p.WCT == nil {
				return nil, errNilWCT
			}
			return WCTRoutingBatch(p.WCT, p.K, cfg, rnds, p.Options)
		}),
	multiEntry("wct-coding", "Lemma 23", "WCTCoding", "WCTCodingBatch", wctPlanTop,
		func(_ graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error) {
			if p.WCT == nil {
				return MultiResult{}, errNilWCT
			}
			return WCTCoding(p.WCT, p.K, cfg, r, p.Options)
		},
		func(_ graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error) {
			if p.WCT == nil {
				return nil, errNilWCT
			}
			return WCTCodingBatch(p.WCT, p.K, cfg, rnds, p.Options)
		}),
	multiEntry("single-link-nonadaptive", "Lemma 29", "SingleLinkNonAdaptive", "SingleLinkNonAdaptiveBatch", singleLinkPlanTop,
		func(_ graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error) {
			return SingleLinkNonAdaptive(p.K, resolveRepeats(p, cfg), cfg, r)
		},
		func(_ graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error) {
			return SingleLinkNonAdaptiveBatch(p.K, resolveRepeats(p, cfg), cfg, rnds)
		}),
	multiEntry("single-link-adaptive", "Lemma 32", "SingleLinkAdaptive", "SingleLinkAdaptiveBatch", singleLinkPlanTop,
		func(_ graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error) {
			return SingleLinkAdaptive(p.K, cfg, r, p.Options)
		},
		func(_ graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error) {
			return SingleLinkAdaptiveBatch(p.K, cfg, rnds, p.Options)
		}),
	multiEntry("single-link-coding", "Lemma 30", "SingleLinkCoding", "SingleLinkCodingBatch", singleLinkPlanTop,
		func(_ graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error) {
			return SingleLinkCoding(p.K, cfg, r, p.Options)
		},
		func(_ graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error) {
			return SingleLinkCodingBatch(p.K, cfg, rnds, p.Options)
		}),
	multiEntry("path-pipeline-routing", "Lemma 25 demonstration schedule", "PathPipelineRouting", "PathPipelineRoutingBatch", pathPlanTop,
		func(_ graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error) {
			return PathPipelineRouting(p.PathLen, p.K, cfg, r, p.Options)
		},
		func(_ graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error) {
			return PathPipelineRoutingBatch(p.PathLen, p.K, cfg, rnds, p.Options)
		}),
	multiEntry("pipelined-batch-routing", "Lemmas 20-21", "PipelinedBatchRouting", "PipelinedBatchRoutingBatch", passedTop,
		func(top graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error) {
			return PipelinedBatchRouting(top, p.K, cfg, r, p.Options)
		},
		func(top graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error) {
			return PipelinedBatchRoutingBatch(top, p.K, cfg, rnds, p.Options)
		}),
	multiEntry("transformed-path-routing", "Lemma 25", "TransformedPathRouting", "TransformedPathRoutingBatch", pathPlanTop,
		func(_ graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error) {
			return TransformedPathRouting(p.PathLen, p.K, cfg, r, p.Transform, p.Options)
		},
		func(_ graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error) {
			return TransformedPathRoutingBatch(p.PathLen, p.K, cfg, rnds, p.Transform, p.Options)
		}),
	multiEntry("transformed-path-coding", "Lemma 26", "TransformedPathCoding", "TransformedPathCodingBatch", pathPlanTop,
		func(_ graph.Topology, cfg radio.Config, r *rng.Stream, p ScheduleParams) (MultiResult, error) {
			return TransformedPathCoding(p.PathLen, p.K, cfg, r, p.Transform, p.Options)
		},
		func(_ graph.Topology, cfg radio.Config, rnds []*rng.Stream, p ScheduleParams) ([]MultiResult, error) {
			return TransformedPathCodingBatch(p.PathLen, p.K, cfg, rnds, p.Transform, p.Options)
		}),
}

var errNilWCT = fmt.Errorf("broadcast: wct schedule needs ScheduleParams.WCT")

func wctPlanTop(_ graph.Topology, p ScheduleParams) graph.Topology {
	if p.WCT == nil {
		return graph.Topology{}
	}
	return graph.Topology{G: p.WCT.G, Source: p.WCT.Source, Name: "wct"}
}

func singleLinkPlanTop(graph.Topology, ScheduleParams) graph.Topology {
	return cachedSingleLink()
}

func pathPlanTop(_ graph.Topology, p ScheduleParams) graph.Topology {
	if p.PathLen < 1 {
		return graph.Topology{}
	}
	return cachedPath(p.PathLen + 1)
}

// Schedules returns every registered schedule in registry (paper) order.
// The returned slice is a copy; the entries are shared and immutable.
func Schedules() []*Schedule {
	out := make([]*Schedule, len(schedules))
	copy(out, schedules)
	return out
}

// LookupSchedule returns the schedule registered under name, or an
// *UnknownScheduleError naming the known schedules.
func LookupSchedule(name string) (*Schedule, error) {
	for _, s := range schedules {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, &UnknownScheduleError{Name: name}
}

// MustSchedule returns the schedule registered under name, panicking on
// a miss — for callers naming registry entries by compile-time constants,
// where an unknown name is a programming error rather than a data
// condition.
func MustSchedule(name string) *Schedule {
	s, err := LookupSchedule(name)
	if err != nil {
		panic(err)
	}
	return s
}

// ScheduleNames returns all registered schedule names, sorted.
func ScheduleNames() []string {
	names := make([]string, len(schedules))
	for i, s := range schedules {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// UnknownScheduleError reports a LookupSchedule name that is not
// registered.
type UnknownScheduleError struct {
	Name string
}

func (e *UnknownScheduleError) Error() string {
	return "broadcast: unknown schedule " + fmt.Sprintf("%q", e.Name)
}
