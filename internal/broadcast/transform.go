package broadcast

import (
	"fmt"
	"math"

	"noisyradio/internal/bitset"
	"noisyradio/internal/graph"
	"noisyradio/internal/radio"
	"noisyradio/internal/rng"
)

// Section 5.2: transformations from the faultless setting to the faulty
// setting (Lemmas 25 and 26), demonstrated on the pipelined path — the
// canonical multi-message schedule whose faultless routing throughput is
// 1/3 (one message crosses each edge every three rounds; nodes three hops
// apart broadcast simultaneously without interference).
//
// The transformed schedules below realise the lemmas' meta-round
// construction: each round of the faultless schedule becomes a meta-round
// of ⌈x/(1-p)·(1+η)⌉ rounds carrying x messages, so the throughput drops by
// exactly the (1-p) factor (up to η) that the lemmas predict.

// PathPipelineRouting runs the adaptive routing pipeline on a path with
// pathLen edges: node v broadcasts in rounds r with r ≡ v (mod 3) whenever
// it holds a message its successor lacks (oracle adaptivity, Definition
// 14). In the faultless model the throughput is 1/3; under sender or
// receiver faults the per-hop retransmissions reduce it to (1-p)/3 — the
// Lemma 25 achievability in its natural adaptive form.
func PathPipelineRouting(pathLen, k int, cfg radio.Config, r *rng.Stream, opts Options) (MultiResult, error) {
	if pathLen < 1 || k < 1 {
		return MultiResult{}, fmt.Errorf("broadcast: path pipeline needs pathLen >= 1 and k >= 1, got (%d,%d)", pathLen, k)
	}
	top := cachedPath(pathLen + 1)
	net, err := idPool.Get(top.G, cfg, r)
	if err != nil {
		return MultiResult{}, err
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = pipelineDefaultMaxRounds(pathLen, k, cfg)
	}
	n := top.G.N()
	// have[v] = number of messages node v holds; messages are delivered in
	// order, so a prefix count suffices.
	have := make([]int32, n)
	have[0] = int32(k)
	tx := bitset.New(n)
	payload := make([]int32, n)
	round := 0
	for ; round < maxRounds && have[n-1] < int32(k); round++ {
		mod := int32(round % 3)
		for v := 0; v < n-1; v++ {
			if int32(v)%3 == mod && have[v] > have[v+1] {
				tx.Set(v)
				payload[v] = have[v+1] // next message the successor lacks
			}
		}
		net.StepSet(tx, payload, nil, func(d radio.Delivery[int32]) {
			// In-order delivery: the payload is exactly have[d.To].
			if d.Payload == have[d.To] && d.From == d.To-1 {
				have[d.To]++
			}
		})
		tx.ResetWindow(tx.NonzeroRange())
	}
	done := 0
	for v := 0; v < n; v++ {
		if have[v] == int32(k) {
			done++
		}
	}
	res := MultiResult{
		Rounds:  round,
		Success: have[n-1] == int32(k),
		Done:    done,
		Channel: net.Stats(),
	}
	idPool.Put(net)
	return res, nil
}

// TransformParams tunes the Lemma 25/26 meta-round transformations.
type TransformParams struct {
	// Batch is x, the number of messages per meta-round; 0 selects
	// ⌈4·log₂(k·pathLen)+8⌉ (the lemmas need x = Ω(log nk) for the union
	// bound).
	Batch int
	// Eta is the lemmas' η slack; 0 selects 0.25.
	Eta float64
}

func (p TransformParams) withDefaults(pathLen, k int) TransformParams {
	out := p
	if out.Batch <= 0 {
		out.Batch = 4*graph.Log2Ceil(k*pathLen+2) + 8
	}
	if out.Eta <= 0 {
		out.Eta = 0.25
	}
	return out
}

// metaRoundLen is the transformed schedule's meta-round length
// ⌈x/(1-p)·(1+η)⌉.
func metaRoundLen(batch int, cfg radio.Config, eta float64) int {
	q := 1.0
	if cfg.Fault != radio.Faultless {
		q = 1 - cfg.P
	}
	return int(math.Ceil(float64(batch) / q * (1 + eta)))
}

// TransformedPathRouting runs the Lemma 25 transformation of the faultless
// path pipeline: each faultless round becomes a meta-round of
// ⌈x/(1-p)(1+η)⌉ rounds in which a scheduled node delivers its batch of x
// messages with per-message retransmission, then stays silent. Unlike
// PathPipelineRouting the *batch schedule* is fixed in advance (only the
// retransmissions adapt), exactly as in the lemma; a node that cannot
// finish its batch within the meta-round leaves a permanent gap, which is
// the exp(-Ω(xη²)) failure event of the proof.
func TransformedPathRouting(pathLen, k int, cfg radio.Config, r *rng.Stream, params TransformParams, opts Options) (MultiResult, error) {
	return transformedPath(pathLen, k, cfg, r, params, opts, false)
}

// TransformedPathCoding runs the Lemma 26 transformation: as in
// TransformedPathRouting, but within a meta-round the scheduled node
// transmits a stream of fresh Reed–Solomon packets coded over its batch of
// x messages, and the receiver reconstructs the batch from any x of them
// (MDS black box). No feedback is used at all, matching the lemma's
// coding setting.
func TransformedPathCoding(pathLen, k int, cfg radio.Config, r *rng.Stream, params TransformParams, opts Options) (MultiResult, error) {
	return transformedPath(pathLen, k, cfg, r, params, opts, true)
}

func transformedPath(pathLen, k int, cfg radio.Config, r *rng.Stream, params TransformParams, opts Options, coding bool) (MultiResult, error) {
	if pathLen < 1 || k < 1 {
		return MultiResult{}, fmt.Errorf("broadcast: transformed path needs pathLen >= 1 and k >= 1, got (%d,%d)", pathLen, k)
	}
	pr := params.withDefaults(pathLen, k)
	batches := (k + pr.Batch - 1) / pr.Batch
	mlen := metaRoundLen(pr.Batch, cfg, pr.Eta)

	top := cachedPath(pathLen + 1)
	net, err := idPool.Get(top.G, cfg, r)
	if err != nil {
		return MultiResult{}, err
	}
	n := top.G.N()
	// batchHave[v] = number of complete batches node v holds.
	batchHave := make([]int32, n)
	batchHave[0] = int32(batches)
	// progress[v] = per-edge (v → v+1) progress within the current
	// meta-round: messages delivered (routing) or packets received by the
	// successor (coding).
	progress := make([]int32, n)
	tx := bitset.New(n)
	payload := make([]int32, n)

	// The faultless pipeline takes 3·(batches + pathLen) rounds; each
	// becomes one meta-round. Run exactly that schedule (non-adaptive at
	// the meta level), as the lemma prescribes.
	metaRounds := 3 * (batches + pathLen)
	totalRounds := 0
	for T := 0; T < metaRounds; T++ {
		mod := int32(T % 3)
		// A node v scheduled in meta-round T forwards batch number
		// (T-v)/3 if it holds it; in prefix terms: forward batch
		// batchHave[v+1] when batchHave[v] > batchHave[v+1].
		for i := range progress {
			progress[i] = 0
		}
		for step := 0; step < mlen; step++ {
			tx.ResetWindow(tx.NonzeroRange())
			for v := 0; v < n-1; v++ {
				if int32(v)%3 != mod || batchHave[v] <= batchHave[v+1] {
					continue
				}
				if coding {
					tx.Set(v)
					payload[v] = int32(T*mlen + step) // fresh coded packet
				} else if progress[v] < int32(pr.Batch) {
					tx.Set(v)
					payload[v] = progress[v] // message index within batch
				}
			}
			net.StepSet(tx, payload, nil, func(d radio.Delivery[int32]) {
				if d.From != d.To-1 {
					return
				}
				v := d.From
				if coding {
					progress[v]++
					if progress[v] == int32(pr.Batch) {
						batchHave[d.To]++
					}
				} else if d.Payload == progress[v] {
					progress[v]++
					if progress[v] == int32(pr.Batch) {
						batchHave[d.To]++
					}
				}
			})
			totalRounds++
		}
	}
	done := 0
	for v := 0; v < n; v++ {
		if batchHave[v] == int32(batches) {
			done++
		}
	}
	res := MultiResult{
		Rounds:  totalRounds,
		Success: batchHave[n-1] == int32(batches),
		Done:    done,
		Channel: net.Stats(),
	}
	idPool.Put(net)
	return res, nil
}

func pipelineDefaultMaxRounds(pathLen, k int, cfg radio.Config) int {
	slack := 1.0
	if cfg.Fault != radio.Faultless {
		slack = 1 / (1 - cfg.P)
	}
	return int(float64(10*(3*k+3*pathLen))*slack) + 2000
}
