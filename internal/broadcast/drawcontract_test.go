package broadcast

import (
	"testing"

	"noisyradio/internal/radio"
	"noisyradio/internal/rng"
)

// TestScheduleDrawV1DefaultUnchanged pins the contract default at the
// schedule level: a config that never mentions the draw contract (the
// zero value) and one that spells radio.DrawV1 explicitly must produce
// identical outcomes for every registry entry — DrawV1 IS today's
// behaviour, not a near-copy of it.
func TestScheduleDrawV1DefaultUnchanged(t *testing.T) {
	for name, c := range scheduleCases(t) {
		s, err := LookupSchedule(name)
		if err != nil {
			t.Fatal(err)
		}
		explicit := c.cfg
		explicit.Draw = radio.DrawV1
		for i := 0; i < 3; i++ {
			want, err := s.Run(c.top, c.cfg, rng.NewFrom(41, uint64(i)), c.p)
			if err != nil {
				t.Fatalf("%s: default trial %d: %v", name, i, err)
			}
			got, err := s.Run(c.top, explicit, rng.NewFrom(41, uint64(i)), c.p)
			if err != nil {
				t.Fatalf("%s: explicit-v1 trial %d: %v", name, i, err)
			}
			if got != want {
				t.Errorf("%s: trial %d diverged under explicit DrawV1\ndefault %+v\nv1      %+v", name, i, want, got)
			}
		}
	}
}

// TestScheduleDrawBatchMatchesRun extends the registry-level
// batch-equivalence contract to every non-default draw version: under each
// of v2/v3/v4, RunBatch over W streams must reproduce W scalar Runs
// outcome for outcome for every entry. This is the schedule-level closure
// of the radio-layer lane-parity tests, and the layer where cross-checkout
// state bugs live: a stateful contract (v3's burst process) restarts with
// each scalar pool checkout, so a batch runner that spans several scalar
// checkouts with one network (sequential routing) must reset the lane's
// draw state at each boundary or diverge here. v3's burst parameters are
// chosen so the stationary marginal stays below BadP at the cases' P=0.5.
func TestScheduleDrawBatchMatchesRun(t *testing.T) {
	versions := []struct {
		name string
		set  func(*radio.Config)
	}{
		{"v2", func(cfg *radio.Config) { cfg.Draw = radio.DrawV2 }},
		{"v3", func(cfg *radio.Config) {
			cfg.Draw = radio.DrawV3
			cfg.Burst = radio.BurstParams{Len: 4, BadP: 0.9}
		}},
		{"v4", func(cfg *radio.Config) {
			cfg.Draw = radio.DrawV4
			cfg.Jam = radio.JamParams{Q: 0.2, Radius: 2}
		}},
	}
	for _, v := range versions {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for name, c := range scheduleCases(t) {
				s, err := LookupSchedule(name)
				if err != nil {
					t.Fatal(err)
				}
				cfg := c.cfg
				v.set(&cfg)
				const w = 3
				want := make([]Outcome, w)
				for i := range want {
					out, err := s.Run(c.top, cfg, rng.NewFrom(83, uint64(i)), c.p)
					if err != nil {
						t.Fatalf("%s: scalar trial %d: %v", name, i, err)
					}
					want[i] = out
				}
				rnds := make([]*rng.Stream, w)
				for i := range rnds {
					rnds[i] = rng.NewFrom(83, uint64(i))
				}
				got, err := s.RunBatch(c.top, cfg, rnds, c.p)
				if err != nil {
					t.Fatalf("%s: batch: %v", name, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s: trial %d diverged under %s\nscalar %+v\nbatch  %+v", name, i, v.name, want[i], got[i])
					}
				}
			}
		})
	}
}
