package broadcast

import (
	"testing"

	"noisyradio/internal/radio"
	"noisyradio/internal/rng"
)

// TestScheduleDrawV1DefaultUnchanged pins the contract default at the
// schedule level: a config that never mentions the draw contract (the
// zero value) and one that spells radio.DrawV1 explicitly must produce
// identical outcomes for every registry entry — DrawV1 IS today's
// behaviour, not a near-copy of it.
func TestScheduleDrawV1DefaultUnchanged(t *testing.T) {
	for name, c := range scheduleCases(t) {
		s, err := LookupSchedule(name)
		if err != nil {
			t.Fatal(err)
		}
		explicit := c.cfg
		explicit.Draw = radio.DrawV1
		for i := 0; i < 3; i++ {
			want, err := s.Run(c.top, c.cfg, rng.NewFrom(41, uint64(i)), c.p)
			if err != nil {
				t.Fatalf("%s: default trial %d: %v", name, i, err)
			}
			got, err := s.Run(c.top, explicit, rng.NewFrom(41, uint64(i)), c.p)
			if err != nil {
				t.Fatalf("%s: explicit-v1 trial %d: %v", name, i, err)
			}
			if got != want {
				t.Errorf("%s: trial %d diverged under explicit DrawV1\ndefault %+v\nv1      %+v", name, i, want, got)
			}
		}
	}
}

// TestScheduleDrawV2BatchMatchesRun extends the registry-level
// batch-equivalence contract to the geometric-skip draw version: under
// radio.DrawV2, RunBatch over W streams must still reproduce W scalar
// Runs outcome for outcome for every entry. This is the schedule-level
// closure of the radio-layer lane-parity tests — if any engine consumed
// its stream differently per lane under v2, it would surface here.
func TestScheduleDrawV2BatchMatchesRun(t *testing.T) {
	for name, c := range scheduleCases(t) {
		s, err := LookupSchedule(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := c.cfg
		cfg.Draw = radio.DrawV2
		const w = 3
		want := make([]Outcome, w)
		for i := range want {
			out, err := s.Run(c.top, cfg, rng.NewFrom(83, uint64(i)), c.p)
			if err != nil {
				t.Fatalf("%s: scalar trial %d: %v", name, i, err)
			}
			want[i] = out
		}
		rnds := make([]*rng.Stream, w)
		for i := range rnds {
			rnds[i] = rng.NewFrom(83, uint64(i))
		}
		got, err := s.RunBatch(c.top, cfg, rnds, c.p)
		if err != nil {
			t.Fatalf("%s: batch: %v", name, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: trial %d diverged under DrawV2\nscalar %+v\nbatch  %+v", name, i, want[i], got[i])
			}
		}
	}
}
