package throughput

import (
	"errors"
	"math"
	"testing"

	"noisyradio/internal/broadcast"
	"noisyradio/internal/graph"
	"noisyradio/internal/radio"
	"noisyradio/internal/rng"
	"noisyradio/internal/sim"
)

func TestMeasureSingleLinkAdaptive(t *testing.T) {
	const k = 100
	cfg := radio.Config{Fault: radio.ReceiverFaults, P: 0.5}
	est, err := Measure(k, 40, 4, 1, func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.SingleLinkAdaptive(k, cfg, r, broadcast.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.SuccessRate != 1 {
		t.Fatalf("success rate = %v", est.SuccessRate)
	}
	// Expected mean rounds = k/(1-p) = 200 → tau ≈ 0.5.
	if math.Abs(est.Tau-0.5) > 0.05 {
		t.Fatalf("tau = %v, want ~0.5", est.Tau)
	}
	if est.MeanRounds < 150 || est.MeanRounds > 250 {
		t.Fatalf("mean rounds = %v", est.MeanRounds)
	}
	if est.RoundsCI95 <= 0 {
		t.Fatal("CI should be positive for stochastic rounds")
	}
}

func TestMeasureCountsFailures(t *testing.T) {
	calls := 0
	est, err := Measure(10, 10, 1, 2, func(r *rng.Stream) (broadcast.MultiResult, error) {
		calls++
		// Alternate success/failure deterministically by call order is racy
		// under parallel workers, so use the stream instead.
		if r.Bool(0.5) {
			return broadcast.MultiResult{Rounds: 20, Success: true}, nil
		}
		return broadcast.MultiResult{Rounds: 99, Success: false}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.SuccessRate <= 0 || est.SuccessRate >= 1 {
		t.Fatalf("success rate = %v, want strictly between 0 and 1", est.SuccessRate)
	}
	if est.MeanRounds != 20 {
		t.Fatalf("mean rounds = %v, want 20 (failures excluded)", est.MeanRounds)
	}
	_ = calls
}

func TestMeasureAllFailed(t *testing.T) {
	_, err := Measure(5, 5, 1, 3, func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.MultiResult{Success: false}, nil
	})
	if err == nil {
		t.Fatal("want error when every trial fails")
	}
}

func TestMeasurePropagatesRunnerError(t *testing.T) {
	sentinel := errors.New("runner broke")
	_, err := Measure(5, 5, 1, 4, func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.MultiResult{}, sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestMeasureValidation(t *testing.T) {
	if _, err := Measure(0, 5, 1, 1, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestMeasureGapSingleLink(t *testing.T) {
	// Non-adaptive routing vs coding on the single link at p=1/2: the gap
	// should be roughly repeats/(1/(1-p)) = repeats/2 (Lemma 31's Θ(log k)).
	const k = 128
	cfg := radio.Config{Fault: radio.ReceiverFaults, P: 0.5}
	repeats := broadcast.DefaultSingleLinkRepeats(k, cfg.P)
	gap, err := MeasureGap(k, 30, 4, 5,
		func(r *rng.Stream) (broadcast.MultiResult, error) {
			return broadcast.SingleLinkCoding(k, cfg, r, broadcast.Options{})
		},
		func(r *rng.Stream) (broadcast.MultiResult, error) {
			return broadcast.SingleLinkNonAdaptive(k, repeats, cfg, r)
		})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(repeats) / 2
	if gap.Ratio < want*0.7 || gap.Ratio > want*1.3 {
		t.Fatalf("gap ratio = %.2f, want ~%.2f", gap.Ratio, want)
	}
}

func TestMeasureGapPropagatesSides(t *testing.T) {
	ok := func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.MultiResult{Rounds: 10, Success: true}, nil
	}
	bad := func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.MultiResult{}, errors.New("nope")
	}
	if _, err := MeasureGap(5, 3, 1, 6, bad, ok); err == nil {
		t.Fatal("coding error swallowed")
	}
	if _, err := MeasureGap(5, 3, 1, 6, ok, bad); err == nil {
		t.Fatal("routing error swallowed")
	}
}

// TestDeferMatchesMeasure: deferred measurements on a shared sweep resolve
// to the same Estimate as standalone Measure calls — the contract the
// row-parallel experiment runners rely on.
func TestDeferMatchesMeasure(t *testing.T) {
	const trials = 30
	cfg := radio.Config{Fault: radio.ReceiverFaults, P: 0.5}
	runnerFor := func(k int) Runner {
		return func(r *rng.Stream) (broadcast.MultiResult, error) {
			return broadcast.SingleLinkAdaptive(k, cfg, r, broadcast.Options{})
		}
	}
	ks := []int{8, 32, 128}
	want := make([]Estimate, len(ks))
	for i, k := range ks {
		est, err := Measure(k, trials, 4, uint64(50+i), runnerFor(k))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = est
	}
	sw := sim.NewSweep(sim.SweepConfig{Workers: 8, RowWorkers: 2})
	pending := make([]*Pending, len(ks))
	for i, k := range ks {
		pending[i] = Defer(sw, k, trials, uint64(50+i), runnerFor(k))
	}
	if err := sw.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range ks {
		got, err := pending[i].Estimate()
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("k=%d: deferred %+v != standalone %+v", ks[i], got, want[i])
		}
	}
}

func TestDeferGapMatchesMeasureGap(t *testing.T) {
	const k, trials = 64, 20
	cfg := radio.Config{Fault: radio.ReceiverFaults, P: 0.5}
	coding := func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.SingleLinkCoding(k, cfg, r, broadcast.Options{})
	}
	routing := func(r *rng.Stream) (broadcast.MultiResult, error) {
		repeats := broadcast.DefaultSingleLinkRepeats(k, cfg.P)
		return broadcast.SingleLinkNonAdaptive(k, repeats, cfg, r)
	}
	want, err := MeasureGap(k, trials, 4, 9, coding, routing)
	if err != nil {
		t.Fatal(err)
	}
	sw := sim.NewSweep(sim.SweepConfig{Workers: 8})
	pg := DeferGap(sw, k, trials, 9, coding, routing)
	if err := sw.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := pg.Gap()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("deferred gap %+v != standalone %+v", got, want)
	}
}

func TestDeferAllFailed(t *testing.T) {
	sw := sim.NewSweep(sim.SweepConfig{Workers: 2})
	p := Defer(sw, 4, 6, 1, func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.MultiResult{Rounds: 5, Success: false}, nil
	})
	if err := sw.Run(); err != nil {
		t.Fatal(err)
	}
	est, err := p.Estimate()
	if err == nil {
		t.Fatal("all-failed row produced an estimate")
	}
	if est.SuccessRate != 0 {
		t.Fatalf("success rate = %v, want 0", est.SuccessRate)
	}
}

func TestDeferPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Defer(k=0) did not panic")
		}
	}()
	Defer(sim.NewSweep(sim.SweepConfig{}), 0, 1, 1, func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.MultiResult{}, nil
	})
}

// TestDeferScheduleMatchesDefer: a schedule-registry measurement resolves
// to the same Estimate as a hand-written Runner over the same schedule,
// at every execution plan — scalar, forced widths and auto.
func TestDeferScheduleMatchesDefer(t *testing.T) {
	const k, trials = 16, 18
	cfg := radio.Config{Fault: radio.ReceiverFaults, P: 0.5}
	sched, err := broadcast.LookupSchedule("star-coding")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Measure(k, trials, 2, 11, func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.StarCoding(20, k, cfg, r, broadcast.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []int{0, 3, 8, sim.TrialBatchAuto} {
		sw := sim.NewSweep(sim.SweepConfig{Workers: 3, TrialBatch: tb})
		p := DeferSchedule(sw, sched, graph.Topology{}, cfg, broadcast.ScheduleParams{Leaves: 20, K: k}, trials, 11)
		if err := sw.Run(); err != nil {
			t.Fatal(err)
		}
		got, err := p.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("TrialBatch=%d: schedule estimate %+v != runner estimate %+v", tb, got, want)
		}
	}
}

// TestDeferGapScheduleMatchesMeasureGap: the schedule-registry gap keeps
// the MeasureGap seed pairing.
func TestDeferGapScheduleMatchesMeasureGap(t *testing.T) {
	const k, trials = 32, 12
	cfg := radio.Config{Fault: radio.ReceiverFaults, P: 0.5}
	want, err := MeasureGap(k, trials, 2, 21,
		func(r *rng.Stream) (broadcast.MultiResult, error) {
			return broadcast.SingleLinkCoding(k, cfg, r, broadcast.Options{})
		},
		func(r *rng.Stream) (broadcast.MultiResult, error) {
			return broadcast.SingleLinkAdaptive(k, cfg, r, broadcast.Options{})
		})
	if err != nil {
		t.Fatal(err)
	}
	coding, err := broadcast.LookupSchedule("single-link-coding")
	if err != nil {
		t.Fatal(err)
	}
	routing, err := broadcast.LookupSchedule("single-link-adaptive")
	if err != nil {
		t.Fatal(err)
	}
	sw := sim.NewSweep(sim.SweepConfig{Workers: 4, TrialBatch: sim.TrialBatchAuto})
	kp := broadcast.ScheduleParams{K: k}
	pg := DeferGapSchedule(sw, coding, routing, graph.Topology{}, cfg, kp, kp, trials, 21)
	if err := sw.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := pg.Gap()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("schedule gap %+v != runner gap %+v", got, want)
	}
}

// TestDeferSchedulePanicsOnBadK mirrors TestDeferPanicsOnBadK for the
// schedule entry point.
func TestDeferSchedulePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DeferSchedule(K=0) did not panic")
		}
	}()
	sched, err := broadcast.LookupSchedule("star-coding")
	if err != nil {
		t.Fatal(err)
	}
	DeferSchedule(sim.NewSweep(sim.SweepConfig{}), sched, graph.Topology{}, radio.Config{Fault: radio.Faultless}, broadcast.ScheduleParams{Leaves: 4}, 1, 1)
}
