package throughput

import (
	"errors"
	"math"
	"testing"

	"noisyradio/internal/broadcast"
	"noisyradio/internal/radio"
	"noisyradio/internal/rng"
)

func TestMeasureSingleLinkAdaptive(t *testing.T) {
	const k = 100
	cfg := radio.Config{Fault: radio.ReceiverFaults, P: 0.5}
	est, err := Measure(k, 40, 4, 1, func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.SingleLinkAdaptive(k, cfg, r, broadcast.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.SuccessRate != 1 {
		t.Fatalf("success rate = %v", est.SuccessRate)
	}
	// Expected mean rounds = k/(1-p) = 200 → tau ≈ 0.5.
	if math.Abs(est.Tau-0.5) > 0.05 {
		t.Fatalf("tau = %v, want ~0.5", est.Tau)
	}
	if est.MeanRounds < 150 || est.MeanRounds > 250 {
		t.Fatalf("mean rounds = %v", est.MeanRounds)
	}
	if est.RoundsCI95 <= 0 {
		t.Fatal("CI should be positive for stochastic rounds")
	}
}

func TestMeasureCountsFailures(t *testing.T) {
	calls := 0
	est, err := Measure(10, 10, 1, 2, func(r *rng.Stream) (broadcast.MultiResult, error) {
		calls++
		// Alternate success/failure deterministically by call order is racy
		// under parallel workers, so use the stream instead.
		if r.Bool(0.5) {
			return broadcast.MultiResult{Rounds: 20, Success: true}, nil
		}
		return broadcast.MultiResult{Rounds: 99, Success: false}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.SuccessRate <= 0 || est.SuccessRate >= 1 {
		t.Fatalf("success rate = %v, want strictly between 0 and 1", est.SuccessRate)
	}
	if est.MeanRounds != 20 {
		t.Fatalf("mean rounds = %v, want 20 (failures excluded)", est.MeanRounds)
	}
	_ = calls
}

func TestMeasureAllFailed(t *testing.T) {
	_, err := Measure(5, 5, 1, 3, func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.MultiResult{Success: false}, nil
	})
	if err == nil {
		t.Fatal("want error when every trial fails")
	}
}

func TestMeasurePropagatesRunnerError(t *testing.T) {
	sentinel := errors.New("runner broke")
	_, err := Measure(5, 5, 1, 4, func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.MultiResult{}, sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestMeasureValidation(t *testing.T) {
	if _, err := Measure(0, 5, 1, 1, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestMeasureGapSingleLink(t *testing.T) {
	// Non-adaptive routing vs coding on the single link at p=1/2: the gap
	// should be roughly repeats/(1/(1-p)) = repeats/2 (Lemma 31's Θ(log k)).
	const k = 128
	cfg := radio.Config{Fault: radio.ReceiverFaults, P: 0.5}
	repeats := broadcast.DefaultSingleLinkRepeats(k, cfg.P)
	gap, err := MeasureGap(k, 30, 4, 5,
		func(r *rng.Stream) (broadcast.MultiResult, error) {
			return broadcast.SingleLinkCoding(k, cfg, r, broadcast.Options{})
		},
		func(r *rng.Stream) (broadcast.MultiResult, error) {
			return broadcast.SingleLinkNonAdaptive(k, repeats, cfg, r)
		})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(repeats) / 2
	if gap.Ratio < want*0.7 || gap.Ratio > want*1.3 {
		t.Fatalf("gap ratio = %.2f, want ~%.2f", gap.Ratio, want)
	}
}

func TestMeasureGapPropagatesSides(t *testing.T) {
	ok := func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.MultiResult{Rounds: 10, Success: true}, nil
	}
	bad := func(r *rng.Stream) (broadcast.MultiResult, error) {
		return broadcast.MultiResult{}, errors.New("nope")
	}
	if _, err := MeasureGap(5, 3, 1, 6, bad, ok); err == nil {
		t.Fatal("coding error swallowed")
	}
	if _, err := MeasureGap(5, 3, 1, 6, ok, bad); err == nil {
		t.Fatal("routing error swallowed")
	}
}
