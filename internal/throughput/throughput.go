// Package throughput estimates topology throughput (Definition 1 of the
// paper) and coding gaps (Definitions 2 and 3) from repeated simulation.
//
// The paper's throughput τ(G, s) is an asymptotic quantity (k → ∞); the
// empirical counterpart measured here is k / E[rounds to success] at a
// finite k, with confidence intervals over Monte-Carlo trials. Gap
// estimates divide two such estimates taken over paired seeds.
package throughput

import (
	"fmt"

	"noisyradio/internal/broadcast"
	"noisyradio/internal/rng"
	"noisyradio/internal/sim"
	"noisyradio/internal/stats"
)

// Runner produces one k-message broadcast execution under the given
// randomness. Implementations wrap the schedules in internal/broadcast.
type Runner func(r *rng.Stream) (broadcast.MultiResult, error)

// Estimate is an empirical throughput measurement.
type Estimate struct {
	K           int     // messages per execution
	Trials      int     // Monte-Carlo repetitions
	MeanRounds  float64 // mean rounds over successful trials
	RoundsCI95  float64 // 95% confidence half-width of MeanRounds
	Tau         float64 // K / MeanRounds
	SuccessRate float64 // fraction of successful trials
}

// Measure runs the runner `trials` times and summarises rounds-to-success.
// Failed executions are excluded from MeanRounds but reflected in
// SuccessRate; an error is returned if every trial failed.
func Measure(k, trials, workers int, seed uint64, run Runner) (Estimate, error) {
	if k < 1 {
		return Estimate{}, fmt.Errorf("throughput: k = %d, need >= 1", k)
	}
	vals, err := sim.Run(trials, workers, seed, func(trial int, r *rng.Stream) (float64, error) {
		res, err := run(r)
		if err != nil {
			return 0, err
		}
		if !res.Success {
			return -1, nil // sentinel: failed trial
		}
		return float64(res.Rounds), nil
	})
	if err != nil {
		return Estimate{}, err
	}
	rounds := make([]float64, 0, len(vals))
	for _, v := range vals {
		if v >= 0 {
			rounds = append(rounds, v)
		}
	}
	est := Estimate{
		K:           k,
		Trials:      trials,
		SuccessRate: float64(len(rounds)) / float64(trials),
	}
	if len(rounds) == 0 {
		return est, fmt.Errorf("throughput: all %d trials failed", trials)
	}
	est.MeanRounds = stats.Mean(rounds)
	est.RoundsCI95 = stats.CI95(rounds)
	est.Tau = float64(k) / est.MeanRounds
	return est, nil
}

// Gap is a coding-versus-routing comparison on one topology: the empirical
// counterpart of the coding gap τ_NC/τ_R.
type Gap struct {
	Coding  Estimate
	Routing Estimate
	// Ratio is Coding.Tau / Routing.Tau.
	Ratio float64
}

// MeasureGap measures both schedules with paired seeds and returns the gap.
func MeasureGap(k, trials, workers int, seed uint64, coding, routing Runner) (Gap, error) {
	c, err := Measure(k, trials, workers, seed, coding)
	if err != nil {
		return Gap{}, fmt.Errorf("coding side: %w", err)
	}
	r, err := Measure(k, trials, workers, seed+1, routing)
	if err != nil {
		return Gap{}, fmt.Errorf("routing side: %w", err)
	}
	return Gap{Coding: c, Routing: r, Ratio: stats.Ratio(c.Tau, r.Tau)}, nil
}
