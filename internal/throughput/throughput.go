// Package throughput estimates topology throughput (Definition 1 of the
// paper) and coding gaps (Definitions 2 and 3) from repeated simulation.
//
// The paper's throughput τ(G, s) is an asymptotic quantity (k → ∞); the
// empirical counterpart measured here is k / E[rounds to success] at a
// finite k, with confidence intervals over Monte-Carlo trials. Gap
// estimates divide two such estimates taken over paired seeds.
package throughput

import (
	"errors"
	"fmt"
	"math"

	"noisyradio/internal/broadcast"
	"noisyradio/internal/graph"
	"noisyradio/internal/radio"
	"noisyradio/internal/rng"
	"noisyradio/internal/sim"
	"noisyradio/internal/stats"
)

// ErrAllTrialsFailed marks an Estimate whose every Monte-Carlo trial
// failed to deliver: no mean or throughput exists, but the measurement
// itself is sound — the schedule simply never succeeded under this noise
// (routinely the case for non-adaptive routing under heavily correlated
// faults). Callers match with errors.Is to report the collapse instead of
// treating it as a harness failure.
var ErrAllTrialsFailed = errors.New("all trials failed")

// Runner produces one k-message broadcast execution under the given
// randomness. Implementations wrap the schedules in internal/broadcast;
// harness code should prefer DeferSchedule, which names a registry entry
// instead and lets the sweep plan the execution.
type Runner func(r *rng.Stream) (broadcast.MultiResult, error)

// Estimate is an empirical throughput measurement.
type Estimate struct {
	K           int     // messages per execution
	Trials      int     // Monte-Carlo repetitions
	MeanRounds  float64 // mean rounds over successful trials
	RoundsCI95  float64 // 95% confidence half-width of MeanRounds
	Tau         float64 // K / MeanRounds
	SuccessRate float64 // fraction of successful trials
}

// Pending is a deferred throughput measurement: a row registered on a
// shared sweep by Defer, whose Estimate becomes available once the sweep
// has run. Rows from many Pending measurements execute on one worker pool,
// which is how the experiment harness keeps every core busy even when a
// single row has only a handful of trials.
type Pending struct {
	k      int
	trials int
	row    *sim.Row
}

// Defer registers a throughput measurement on sw. The streaming row
// statistics use NaN as the failed-trial sentinel, so MeanRounds averages
// successful trials only while SuccessRate still sees every trial —
// exactly the Measure semantics, in O(1) memory per row. It panics on
// invalid arguments (Measure keeps the error-returning validation).
// Harness code measuring a registered schedule should use DeferSchedule
// instead, which also lets the sweep batch the trials.
func Defer(sw *sim.Sweep, k, trials int, seed uint64, run Runner) *Pending {
	if k < 1 {
		panic(fmt.Sprintf("throughput: k = %d, need >= 1", k))
	}
	row := sw.Add(trials, seed, func(trial int, r *rng.Stream) (float64, error) {
		res, err := run(r)
		if err != nil {
			return 0, err
		}
		if !res.Success {
			return math.NaN(), nil // dropped by the accumulator, counted by SuccessRate
		}
		return float64(res.Rounds), nil
	})
	return &Pending{k: k, trials: trials, row: row}
}

// roundsOrNaN is the throughput value mapping: successful trials
// contribute their round count, failures the accumulator's NaN sentinel
// (dropped from MeanRounds, still counted by SuccessRate).
func roundsOrNaN(out broadcast.Outcome) (float64, error) {
	if !out.Success {
		return math.NaN(), nil
	}
	return float64(out.Rounds), nil
}

// DeferSchedule registers a throughput measurement of one registered
// broadcast schedule on sw, with k = p.K messages per execution. How the
// trials execute — engine, scalar or lockstep batches and at which width —
// is the sweep's execution plan (see sim.Sweep.AddSchedule); estimates
// are bit-identical at every plan. It panics on p.K < 1, like Defer.
func DeferSchedule(sw *sim.Sweep, sched *broadcast.Schedule, top graph.Topology, cfg radio.Config, p broadcast.ScheduleParams, trials int, seed uint64) *Pending {
	if p.K < 1 {
		panic(fmt.Sprintf("throughput: k = %d, need >= 1", p.K))
	}
	row := sw.AddSchedule(sched, top, cfg, p, trials, seed, roundsOrNaN)
	return &Pending{k: p.K, trials: trials, row: row}
}

// Estimate resolves the deferred measurement. Valid only after the sweep
// passed to Defer has run. An error is returned if a trial errored or if
// every trial failed.
func (p *Pending) Estimate() (Estimate, error) {
	if err := p.row.Err(); err != nil {
		return Estimate{}, err
	}
	acc := p.row.Acc()
	est := Estimate{
		K:           p.k,
		Trials:      p.trials,
		SuccessRate: float64(acc.N()) / float64(p.trials),
	}
	if acc.N() == 0 {
		// The estimate (with its zero SuccessRate and trial count) is still
		// returned: callers distinguishing "the schedule collapsed under
		// this noise" from a harness error match on ErrAllTrialsFailed and
		// may render the collapse as a result rather than abort.
		return est, fmt.Errorf("throughput: all %d trials failed: %w", p.trials, ErrAllTrialsFailed)
	}
	est.MeanRounds = acc.Mean()
	est.RoundsCI95 = acc.CI95()
	est.Tau = float64(p.k) / est.MeanRounds
	return est, nil
}

// Measure runs the runner `trials` times and summarises rounds-to-success.
// Failed executions are excluded from MeanRounds but reflected in
// SuccessRate; an error is returned if every trial failed. It is Defer +
// Run on a private single-row sweep; callers measuring several rows should
// Defer them all on one sweep instead.
func Measure(k, trials, workers int, seed uint64, run Runner) (Estimate, error) {
	if k < 1 {
		return Estimate{}, fmt.Errorf("throughput: k = %d, need >= 1", k)
	}
	if trials < 1 {
		return Estimate{}, fmt.Errorf("throughput: trials = %d, need >= 1", trials)
	}
	sw := sim.NewSweep(sim.SweepConfig{Workers: workers})
	p := Defer(sw, k, trials, seed, run)
	if err := sw.Run(); err != nil {
		return Estimate{}, err
	}
	return p.Estimate()
}

// Gap is a coding-versus-routing comparison on one topology: the empirical
// counterpart of the coding gap τ_NC/τ_R.
type Gap struct {
	Coding  Estimate
	Routing Estimate
	// Ratio is Coding.Tau / Routing.Tau.
	Ratio float64
}

// PendingGap is a deferred MeasureGap: both sides registered on a shared
// sweep, resolved by Gap after the sweep has run.
type PendingGap struct {
	coding  *Pending
	routing *Pending
}

// DeferGap registers both sides of a gap measurement on sw with paired
// seeds (seed for coding, seed+1 for routing — the MeasureGap pairing).
func DeferGap(sw *sim.Sweep, k, trials int, seed uint64, coding, routing Runner) *PendingGap {
	return &PendingGap{
		coding:  Defer(sw, k, trials, seed, coding),
		routing: Defer(sw, k, trials, seed+1, routing),
	}
}

// DeferGapSchedule is DeferGap over two registered schedules sharing one
// topology and noise configuration, with the MeasureGap seed pairing
// (seed for coding, seed+1 for routing). Each side's k is its own
// params' K.
func DeferGapSchedule(sw *sim.Sweep, coding, routing *broadcast.Schedule, top graph.Topology, cfg radio.Config, codingP, routingP broadcast.ScheduleParams, trials int, seed uint64) *PendingGap {
	return &PendingGap{
		coding:  DeferSchedule(sw, coding, top, cfg, codingP, trials, seed),
		routing: DeferSchedule(sw, routing, top, cfg, routingP, trials, seed+1),
	}
}

// Gap resolves the deferred gap measurement. Valid only after the sweep
// passed to DeferGap has run.
func (p *PendingGap) Gap() (Gap, error) {
	c, err := p.coding.Estimate()
	if err != nil {
		return Gap{}, fmt.Errorf("coding side: %w", err)
	}
	r, err := p.routing.Estimate()
	if err != nil {
		return Gap{}, fmt.Errorf("routing side: %w", err)
	}
	return Gap{Coding: c, Routing: r, Ratio: stats.Ratio(c.Tau, r.Tau)}, nil
}

// MeasureGap measures both schedules with paired seeds and returns the gap.
func MeasureGap(k, trials, workers int, seed uint64, coding, routing Runner) (Gap, error) {
	if k < 1 {
		return Gap{}, fmt.Errorf("throughput: k = %d, need >= 1", k)
	}
	if trials < 1 {
		return Gap{}, fmt.Errorf("throughput: trials = %d, need >= 1", trials)
	}
	sw := sim.NewSweep(sim.SweepConfig{Workers: workers})
	p := DeferGap(sw, k, trials, seed, coding, routing)
	if err := sw.Run(); err != nil {
		// Resolve through Gap so the failing side is named.
		if _, gerr := p.Gap(); gerr != nil {
			return Gap{}, gerr
		}
		return Gap{}, err
	}
	return p.Gap()
}
