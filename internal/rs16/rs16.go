// Package rs16 is a systematic Reed–Solomon erasure code over GF(2^16),
// supporting up to 65536 total shards — the large-field companion of
// internal/rs.
//
// It exists so the "poly(nk) coded packets, any k decode" black box of the
// paper's Section 5 schedules can be realised with actual payloads even
// when executions span thousands of rounds (star/WCT/single-link coding at
// large k), rather than relying on the packet-counting abstraction alone.
// Shards are []uint16 symbol vectors.
package rs16

import (
	"errors"
	"fmt"

	"noisyradio/internal/gf16"
)

// MaxShards is the total-shard ceiling, bounded by the field size.
const MaxShards = 1 << 16

// Exported errors for caller matching.
var (
	// ErrTooFewShards indicates fewer than k shards were available.
	ErrTooFewShards = errors.New("rs16: too few shards to reconstruct")
	// ErrShardSize indicates inconsistent or zero shard sizes.
	ErrShardSize = errors.New("rs16: inconsistent shard sizes")
	errSingular  = errors.New("rs16: matrix is singular")
)

// Code is a Reed–Solomon code with k data shards out of m total shards.
type Code struct {
	k, m int
	gen  *matrix // m×k systematic generator
}

// New creates a code with dataShards data shards and totalShards total
// shards; 0 < dataShards <= totalShards <= MaxShards.
func New(dataShards, totalShards int) (*Code, error) {
	if dataShards <= 0 {
		return nil, fmt.Errorf("rs16: dataShards = %d, must be positive", dataShards)
	}
	if totalShards < dataShards {
		return nil, fmt.Errorf("rs16: totalShards = %d < dataShards = %d", totalShards, dataShards)
	}
	if totalShards > MaxShards {
		return nil, fmt.Errorf("rs16: totalShards = %d exceeds MaxShards = %d", totalShards, MaxShards)
	}
	v := vandermonde(totalShards, dataShards)
	top := v.subMatrix(0, dataShards, 0, dataShards)
	topInv, err := top.invert()
	if err != nil {
		return nil, fmt.Errorf("rs16: internal: vandermonde top block singular: %w", err)
	}
	return &Code{k: dataShards, m: totalShards, gen: v.mul(topInv)}, nil
}

// DataShards returns k.
func (c *Code) DataShards() int { return c.k }

// TotalShards returns m.
func (c *Code) TotalShards() int { return c.m }

// EncodeShard produces the single shard with the given index from the k
// data shards (each the same non-zero length).
func (c *Code) EncodeShard(index int, data [][]uint16) ([]uint16, error) {
	if index < 0 || index >= c.m {
		return nil, fmt.Errorf("rs16: shard index %d out of range [0,%d)", index, c.m)
	}
	if err := c.checkData(data); err != nil {
		return nil, err
	}
	out := make([]uint16, len(data[0]))
	for j, coeff := range c.gen.row(index) {
		if coeff != 0 {
			gf16.MulVec(out, data[j], coeff)
		}
	}
	return out, nil
}

// Reconstruct recovers the data shards from any k present shards; shards
// has length m with nil for missing entries.
func (c *Code) Reconstruct(shards [][]uint16) ([][]uint16, error) {
	if len(shards) != c.m {
		return nil, fmt.Errorf("rs16: got %d shard slots, want %d", len(shards), c.m)
	}
	present := make([]int, 0, c.k)
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		}
		if len(s) != size || size == 0 {
			return nil, fmt.Errorf("%w: shard %d has length %d, want %d (non-zero)", ErrShardSize, i, len(s), size)
		}
		present = append(present, i)
		if len(present) == c.k {
			break
		}
	}
	if len(present) < c.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(present), c.k)
	}
	dec := newMatrix(c.k, c.k)
	for r, idx := range present {
		copy(dec.row(r), c.gen.row(idx))
	}
	decInv, err := dec.invert()
	if err != nil {
		return nil, fmt.Errorf("rs16: internal: decode matrix singular: %w", err)
	}
	data := make([][]uint16, c.k)
	for i := 0; i < c.k; i++ {
		data[i] = make([]uint16, size)
		for j, coeff := range decInv.row(i) {
			if coeff != 0 {
				gf16.MulVec(data[i], shards[present[j]], coeff)
			}
		}
	}
	return data, nil
}

func (c *Code) checkData(data [][]uint16) error {
	if len(data) != c.k {
		return fmt.Errorf("rs16: got %d data shards, want %d", len(data), c.k)
	}
	size := -1
	for i, d := range data {
		if size == -1 {
			size = len(d)
		}
		if len(d) != size || size == 0 {
			return fmt.Errorf("%w: shard %d has length %d, want %d (non-zero)", ErrShardSize, i, len(d), size)
		}
	}
	return nil
}

// matrix is a dense row-major matrix over GF(2^16).
type matrix struct {
	rows, cols int
	data       []uint16
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, data: make([]uint16, rows*cols)}
}

func (m *matrix) row(i int) []uint16     { return m.data[i*m.cols : (i+1)*m.cols] }
func (m *matrix) at(i, j int) uint16     { return m.data[i*m.cols+j] }
func (m *matrix) set(i, j int, v uint16) { m.data[i*m.cols+j] = v }

func vandermonde(rows, cols int) *matrix {
	m := newMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		acc := uint16(1)
		for j := 0; j < cols; j++ {
			m.set(i, j, acc)
			acc = gf16.Mul(acc, uint16(i))
		}
	}
	return m
}

func (m *matrix) mul(other *matrix) *matrix {
	out := newMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		ro := out.row(i)
		for k, a := range m.row(i) {
			if a != 0 {
				gf16.MulVec(ro, other.row(k), a)
			}
		}
	}
	return out
}

func (m *matrix) subMatrix(r0, r1, c0, c1 int) *matrix {
	out := newMatrix(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.row(i-r0), m.row(i)[c0:c1])
	}
	return out
}

func (m *matrix) invert() (*matrix, error) {
	n := m.rows
	work := newMatrix(n, n)
	copy(work.data, m.data)
	inv := newMatrix(n, n)
	for i := 0; i < n; i++ {
		inv.set(i, i, 1)
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, errSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		if pv := work.at(col, col); pv != 1 {
			invPv := gf16.Inv(pv)
			gf16.ScaleVec(work.row(col), invPv)
			gf16.ScaleVec(inv.row(col), invPv)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if cv := work.at(r, col); cv != 0 {
				gf16.MulVec(work.row(r), work.row(col), cv)
				gf16.MulVec(inv.row(r), inv.row(col), cv)
			}
		}
	}
	return inv, nil
}

func swapRows(m *matrix, a, b int) {
	ra, rb := m.row(a), m.row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}
