package rs16

import (
	"errors"
	"testing"
	"testing/quick"

	"noisyradio/internal/rng"
)

func randomData(r *rng.Stream, k, size int) [][]uint16 {
	data := make([][]uint16, k)
	for i := range data {
		data[i] = make([]uint16, size)
		for j := range data[i] {
			data[i][j] = uint16(r.Uint64())
		}
	}
	return data
}

func equal(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		k, m    int
		wantErr bool
	}{
		{name: "ok", k: 4, m: 10},
		{name: "ok beyond gf256", k: 100, m: 5000},
		{name: "zero data", k: 0, m: 1, wantErr: true},
		{name: "m below k", k: 3, m: 2, wantErr: true},
		{name: "m too large", k: 3, m: MaxShards + 1, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, err := New(tt.k, tt.m)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && (c.DataShards() != tt.k || c.TotalShards() != tt.m) {
				t.Fatalf("shape (%d,%d)", c.DataShards(), c.TotalShards())
			}
		})
	}
}

func TestSystematicPrefix(t *testing.T) {
	c, err := New(5, 40)
	if err != nil {
		t.Fatal(err)
	}
	data := randomData(rng.New(1), 5, 8)
	for i := 0; i < 5; i++ {
		shard, err := c.EncodeShard(i, data)
		if err != nil {
			t.Fatal(err)
		}
		if !equal(shard, data[i]) {
			t.Fatalf("shard %d is not the data shard", i)
		}
	}
}

func TestRoundTripBeyond256Shards(t *testing.T) {
	// The whole point of rs16: more than 256 distinct coded packets.
	const k, m = 32, 2000
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	data := randomData(r, k, 4)
	// Keep k random shard indices spread across the full range.
	keep := r.SampleK(m, k)
	slots := make([][]uint16, m)
	for _, idx := range keep {
		shard, err := c.EncodeShard(idx, data)
		if err != nil {
			t.Fatal(err)
		}
		slots[idx] = shard
	}
	got, err := c.Reconstruct(slots)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !equal(got[i], data[i]) {
			t.Fatalf("data shard %d mismatch", i)
		}
	}
}

func TestReconstructTooFew(t *testing.T) {
	c, err := New(4, 300)
	if err != nil {
		t.Fatal(err)
	}
	data := randomData(rng.New(3), 4, 4)
	slots := make([][]uint16, 300)
	for _, idx := range []int{7, 130, 299} { // only 3 of 4
		s, err := c.EncodeShard(idx, data)
		if err != nil {
			t.Fatal(err)
		}
		slots[idx] = s
	}
	if _, err := c.Reconstruct(slots); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestShardSizeValidation(t *testing.T) {
	c, err := New(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EncodeShard(0, [][]uint16{{1}, {2, 3}}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("ragged data: err = %v", err)
	}
	if _, err := c.EncodeShard(0, [][]uint16{{}, {}}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("empty data: err = %v", err)
	}
	if _, err := c.EncodeShard(11, randomData(rng.New(4), 2, 2)); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	bad := make([][]uint16, 10)
	bad[0] = []uint16{1}
	bad[1] = []uint16{1, 2}
	if _, err := c.Reconstruct(bad); !errors.Is(err, ErrShardSize) {
		t.Fatalf("ragged slots: err = %v", err)
	}
	if _, err := c.Reconstruct(make([][]uint16, 3)); err == nil {
		t.Fatal("wrong slot count accepted")
	}
}

// Property: any random k-subset of a moderate code decodes exactly.
func TestQuickMDS(t *testing.T) {
	f := func(seed uint64, kRaw uint8, spreadRaw uint16) bool {
		r := rng.New(seed)
		k := int(kRaw)%10 + 1
		m := k + int(spreadRaw)%1500
		c, err := New(k, m)
		if err != nil {
			return false
		}
		data := randomData(r, k, 3)
		keep := r.SampleK(m, k)
		slots := make([][]uint16, m)
		for _, idx := range keep {
			s, err := c.EncodeShard(idx, data)
			if err != nil {
				return false
			}
			slots[idx] = s
		}
		got, err := c.Reconstruct(slots)
		if err != nil {
			return false
		}
		for i := range data {
			if !equal(got[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeShard(b *testing.B) {
	c, err := New(64, 4096)
	if err != nil {
		b.Fatal(err)
	}
	data := randomData(rng.New(1), 64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeShard(i%4096, data); err != nil {
			b.Fatal(err)
		}
	}
}
