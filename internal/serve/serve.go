// Package serve implements the sweep service: a persistent HTTP server
// that accepts sweep jobs in the schedule registry's vocabulary, shards
// them across the sim.Sweep scheduler, streams partial statistics as
// shards complete, and caches finished results under their canonical
// plan key (benchreport.JobSpec.PlanKey).
//
// The determinism stack the service stands on, bottom to top:
//
//   - trial i of a (seed, trials) job always draws rng.NewFrom(seed, i),
//     whatever engine, batch width or worker count executes it;
//   - a shard row for [start, end) replays exactly the global trials
//     start..end-1 (sim.Sweep.AddScheduleShard), and merging shard
//     accumulators in shard order reproduces the unsharded fold
//     (stats.Accumulator.Merge);
//   - the shard plan is a pure function of the job spec (trial count),
//     never of machine shape;
//   - snapshot k is the merge of shards 0..k, emitted when those shards
//     have all completed — a prefix property, so the full NDJSON stream
//     is byte-stable across executions.
//
// Hence a finished body can be cached and replayed verbatim: a cache hit
// IS the prior result, not a re-computation, and the X-Cache header is
// the only part of the response that differs.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"noisyradio/internal/benchreport"
	"noisyradio/internal/broadcast"
	"noisyradio/internal/experiments"
	"noisyradio/internal/graph"
	"noisyradio/internal/radio"
	"noisyradio/internal/sim"
	"noisyradio/internal/stats"
)

// Config tunes a Server. Every field is an execution knob: none of them
// changes the statistics of any job, only how fast they arrive — except
// Shards, which changes where snapshot lines fall in the stream (bodies
// are cached per process, so a fixed Config keeps them byte-stable).
type Config struct {
	// CacheSize bounds the result cache in entries (finished bodies).
	// 0 means 1024.
	CacheSize int
	// Shards fixes the per-job shard count. 0 derives it from the trial
	// count: min(8, ceil(trials/32)) — small jobs stay unsharded, large
	// jobs get snapshot granularity.
	Shards int
	// Workers and TrialBatch configure each job's sim.Sweep
	// (0 = GOMAXPROCS workers; TrialBatchAuto plans the batch width).
	Workers    int
	TrialBatch int
}

// Server is the sweep service. It implements http.Handler; lifecycle
// (listening, TLS, draining) belongs to the owning http.Server.
type Server struct {
	cfg Config

	mux *http.ServeMux

	mu      sync.Mutex
	cache   *bodyCache
	flights map[string]*flight

	metrics struct {
		jobs      atomic.Int64 // accepted job submissions (valid specs)
		hits      atomic.Int64 // served verbatim from the result cache
		misses    atomic.Int64 // executed
		coalesced atomic.Int64 // waited on an identical in-flight job
		errored   atomic.Int64 // finished with an error line (not cached)
		inflight  atomic.Int64 // shards currently executing
		trials    atomic.Int64 // trials folded by finished jobs
	}
}

// flight is one in-flight execution, used to coalesce concurrent
// identical submissions: followers wait for done, then replay body.
type flight struct {
	done chan struct{}
	body []byte // full stream bytes; set before done closes
	ok   bool   // finished cleanly (body also cached)
}

// NewServer builds a sweep service with the given execution knobs.
func NewServer(cfg Config) *Server {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	if cfg.TrialBatch == 0 {
		cfg.TrialBatch = sim.TrialBatchAuto
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   newBodyCache(cfg.CacheSize),
		flights: make(map[string]*flight),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleJob)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ShardPlan returns the deterministic shard count for a trial count
// under this server's config — exported so tests and the microbench can
// predict where snapshot lines fall.
func (s *Server) ShardPlan(trials int) int {
	if s.cfg.Shards > 0 {
		return s.cfg.Shards
	}
	shards := (trials + 31) / 32
	if shards > 8 {
		shards = 8
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// job is a validated, resolved submission: everything the sweep needs,
// derived from the spec before any execution (so malformed jobs fail as
// HTTP 400, never mid-stream).
type job struct {
	spec   benchreport.JobSpec
	key    string
	sched  *broadcast.Schedule
	top    graph.Topology
	params broadcast.ScheduleParams
	cfg    radio.Config
	shards int
}

// resolveJob validates a spec against the registries and builds the run
// inputs. The error text is the HTTP 400 body.
func (s *Server) resolveJob(spec benchreport.JobSpec) (*job, error) {
	sched, err := broadcast.LookupSchedule(spec.Schedule)
	if err != nil {
		return nil, fmt.Errorf("%w (known: %v)", err, broadcast.ScheduleNames())
	}
	fault, err := radio.ParseFaultModel(spec.Fault)
	if err != nil {
		return nil, err
	}
	draw, err := radio.ParseDrawContract(spec.Draw)
	if err != nil {
		return nil, err
	}
	if spec.Trials < 1 {
		return nil, fmt.Errorf("trials must be >= 1, got %d", spec.Trials)
	}
	if spec.P < 0 || spec.P >= 1 {
		return nil, fmt.Errorf("p must be in [0, 1), got %v", spec.P)
	}
	k := spec.K
	if k == 0 {
		k = 1
	}
	top, params, err := experiments.ScheduleWorkload(sched, spec.Topology, spec.N, k, spec.Seed)
	if err != nil {
		return nil, err
	}
	cfg := radio.Config{
		Fault: fault,
		Draw:  draw,
		Burst: radio.BurstParams{Len: spec.BurstLen, BadP: spec.BurstBadP},
		Jam:   radio.JamParams{Q: spec.JamQ, Radius: spec.JamRadius, Ball: spec.JamBall},
	}
	if fault != radio.Faultless {
		cfg.P = spec.P
	}
	return &job{
		spec:   spec,
		key:    spec.PlanKey(),
		sched:  sched,
		top:    top,
		params: params,
		cfg:    cfg,
		shards: s.ShardPlan(spec.Trials),
	}, nil
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec benchreport.JobSpec
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	jb, err := s.resolveJob(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.jobs.Add(1)

	// Admission: cache hit, coalesce onto an identical in-flight job, or
	// become the executing leader.
	s.mu.Lock()
	if body, ok := s.cache.get(jb.key); ok {
		s.mu.Unlock()
		s.metrics.hits.Add(1)
		s.writeBody(w, jb.key, "hit", body)
		return
	}
	if f, ok := s.flights[jb.key]; ok {
		s.mu.Unlock()
		s.metrics.coalesced.Add(1)
		select {
		case <-f.done:
		case <-r.Context().Done():
			httpError(w, http.StatusServiceUnavailable, r.Context().Err())
			return
		}
		if !f.ok {
			httpError(w, http.StatusServiceUnavailable, errors.New("coalesced job aborted; retry"))
			return
		}
		s.writeBody(w, jb.key, "coalesced", f.body)
		return
	}
	f := &flight{done: make(chan struct{})}
	s.flights[jb.key] = f
	s.mu.Unlock()
	s.metrics.misses.Add(1)

	body, runErr := s.execute(r.Context(), jb, w)

	s.mu.Lock()
	f.body, f.ok = body, runErr == nil
	if runErr == nil {
		s.cache.put(jb.key, body)
	}
	delete(s.flights, jb.key)
	s.mu.Unlock()
	close(f.done)
	if runErr == nil {
		s.metrics.trials.Add(int64(jb.spec.Trials))
	} else {
		s.metrics.errored.Add(1)
	}
}

// writeBody replays a finished stream verbatim. The cache disposition
// travels in headers — the body bytes are identical on hit and miss.
func (s *Server) writeBody(w http.ResponseWriter, key, disposition string, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Plan-Key", key)
	h.Set("X-Cache", disposition)
	w.Write(body)
}

// execute runs one job as the flight leader, streaming the NDJSON body
// to w line by line while accumulating the byte-identical copy that the
// cache (and any coalesced followers) will replay. Client disconnection
// cancels ctx, which cancels the sweep; the job then finishes with an
// error line and is not cached.
func (s *Server) execute(ctx context.Context, jb *job, w http.ResponseWriter) ([]byte, error) {
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Plan-Key", jb.key)
	h.Set("X-Cache", "miss")
	flusher, _ := w.(http.Flusher)

	var body bytes.Buffer
	emit := func(line Line) {
		b, err := json.Marshal(line)
		if err != nil {
			panic(fmt.Sprintf("serve: marshaling stream line: %v", err))
		}
		b = append(b, '\n')
		body.Write(b)
		w.Write(b)
		if flusher != nil {
			flusher.Flush()
		}
	}

	sw := sim.NewSweep(sim.SweepConfig{Workers: s.cfg.Workers, TrialBatch: s.cfg.TrialBatch})
	rows := make([]*sim.Row, jb.shards)
	for i := range rows {
		start := i * jb.spec.Trials / jb.shards
		end := (i + 1) * jb.spec.Trials / jb.shards
		rows[i] = sw.AddScheduleShard(jb.sched, jb.top, jb.cfg, jb.params, start, end, jb.spec.Seed, scheduleValue)
	}
	s.metrics.inflight.Add(int64(jb.shards))
	errc := make(chan error, 1)
	go func() { errc <- sw.RunContext(jobCtx) }()

	merged := stats.NewAccumulator()
	var rowErr error
	for k, row := range rows {
		<-row.Done()
		s.metrics.inflight.Add(-1)
		if err := row.Err(); err != nil {
			rowErr = err
			// Abandon the rest of the job: cancel unstarted chunks, drain
			// the remaining shard gauge as their rows complete.
			cancel()
			for _, rest := range rows[k+1:] {
				<-rest.Done()
				s.metrics.inflight.Add(-1)
			}
			break
		}
		merged.Merge(row.Acc())
		if k < len(rows)-1 {
			// Interior snapshot: the merge of shards 0..k. The final
			// prefix is the result line below, not a duplicate snapshot.
			emit(Line{Type: "snapshot", ShardsDone: k + 1, Shards: jb.shards, Stats: newStats(merged)})
		}
	}
	<-errc
	if rowErr != nil {
		emit(Line{Type: "error", Key: jb.key, Error: rowErr.Error()})
		return body.Bytes(), rowErr
	}
	emit(Line{
		Type:     "result",
		Key:      jb.key,
		Schedule: jb.spec.Schedule,
		Trials:   jb.spec.Trials,
		Shards:   jb.shards,
		Stats:    newStats(merged),
	})
	return body.Bytes(), nil
}

// scheduleValue is the one statistic the service folds: rounds to
// completion, with failed trials feeding the accumulator's dropped
// counter via the NaN sentinel — the same mapping the CLI's -schedule
// runner uses.
func scheduleValue(o broadcast.Outcome) (float64, error) {
	if !o.Success {
		return math.NaN(), nil
	}
	return float64(o.Rounds), nil
}

// handleMetrics renders the counters as plain "name value" lines.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := s.cache.len()
	s.mu.Unlock()
	m := map[string]int64{
		"noisyserved_jobs_total":         s.metrics.jobs.Load(),
		"noisyserved_cache_hits_total":   s.metrics.hits.Load(),
		"noisyserved_cache_misses_total": s.metrics.misses.Load(),
		"noisyserved_coalesced_total":    s.metrics.coalesced.Load(),
		"noisyserved_jobs_errored_total": s.metrics.errored.Load(),
		"noisyserved_shards_inflight":    s.metrics.inflight.Load(),
		"noisyserved_trials_total":       s.metrics.trials.Load(),
		"noisyserved_cache_entries":      int64(entries),
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, m[name])
	}
}
