package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"noisyradio/internal/benchreport"
)

// CacheMicrobench measures the sweep service's cold-vs-cached gap on one
// representative job — Decay on the implicit Complete(4096) workload —
// through a real HTTP round trip, and reports both as microbench rows
// for the BENCH_sweep.json artifact:
//
//	servecache/cold/decay-complete-4096  (executes the sweep)
//	servecache/hit/decay-complete-4096   (replays the cached body)
//
// NsPerRound here is nanoseconds per request (the "round" is one HTTP
// round trip); the benchgate -min-cachehit-speedup gate divides the two,
// so the unit cancels. The hit row is the best of several requests —
// the gate asserts what a cache hit can do, scheduler noise aside.
func CacheMicrobench() []benchreport.Microbench {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := benchreport.JobSpec{
		Schedule: "decay",
		Topology: "complete",
		N:        4096,
		Fault:    "sender",
		P:        0.1,
		Seed:     1,
		Trials:   512, // big enough that cold is solidly macroscopic (tens of ms) against a ~50µs hit
	}
	submit := func() float64 {
		start := time.Now()
		if _, err := Submit(context.Background(), ts.URL, spec, nil); err != nil {
			panic(fmt.Sprintf("serve: cache microbench job failed: %v", err))
		}
		return float64(time.Since(start).Nanoseconds())
	}
	cold := submit()
	hit := submit()
	for i := 0; i < 4; i++ {
		if again := submit(); again < hit {
			hit = again
		}
	}
	return []benchreport.Microbench{
		{Name: "servecache/cold/decay-complete-4096", NsPerRound: cold},
		{Name: "servecache/hit/decay-complete-4096", NsPerRound: hit},
	}
}
