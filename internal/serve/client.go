package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// SubmitResult is one finished job from the client's point of view: the
// terminal result line plus the server's cache disposition ("hit",
// "miss" or "coalesced" — header-borne, never part of the cached body).
type SubmitResult struct {
	Line
	Cache string
}

// Submit posts one job spec (already-JSON bytes are not accepted — the
// caller provides the struct, this encodes it) to a sweep service and
// consumes the NDJSON stream, invoking onSnapshot for each partial
// snapshot as it arrives. It returns when the terminal line arrives: the
// result line on success, an error for HTTP-level rejections (bad spec,
// unreachable server) and for jobs that finished with an error line.
func Submit(ctx context.Context, baseURL string, spec any, onSnapshot func(Line)) (*SubmitResult, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("encoding job spec: %w", err)
	}
	url := strings.TrimSuffix(baseURL, "/") + "/v1/jobs"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("submitting job: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("server rejected job (%s): %s", resp.Status, e.Error)
		}
		return nil, fmt.Errorf("server rejected job (%s): %s", resp.Status, strings.TrimSpace(string(body)))
	}

	res := &SubmitResult{Cache: resp.Header.Get("X-Cache")}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line Line
		if err := json.Unmarshal(raw, &line); err != nil {
			return nil, fmt.Errorf("decoding stream line %q: %w", raw, err)
		}
		switch line.Type {
		case "snapshot":
			if onSnapshot != nil {
				onSnapshot(line)
			}
		case "result":
			res.Line = line
			return res, nil
		case "error":
			return nil, fmt.Errorf("job failed: %s", line.Error)
		default:
			return nil, fmt.Errorf("unknown stream line type %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading stream: %w", err)
	}
	return nil, fmt.Errorf("stream ended without a result line")
}
