package serve

import "container/list"

// bodyCache is a plain LRU over finished response bodies, keyed by plan
// key. Values are the full NDJSON stream bytes, stored only for jobs
// that completed cleanly — a hit is served by writing the stored bytes
// verbatim, which is why byte-stability of the stream is a correctness
// property, not a nicety. Callers hold the server mutex; the cache has
// no locking of its own.
type bodyCache struct {
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newBodyCache(capacity int) *bodyCache {
	return &bodyCache{cap: capacity, order: list.New(), entries: make(map[string]*list.Element)}
}

func (c *bodyCache) get(key string) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

func (c *bodyCache) put(key string, body []byte) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *bodyCache) len() int { return c.order.Len() }
