package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"noisyradio/internal/benchreport"
	"noisyradio/internal/broadcast"
	"noisyradio/internal/graph"
	"noisyradio/internal/sim"
)

func testSpec() benchreport.JobSpec {
	return benchreport.JobSpec{
		Schedule: "decay",
		Topology: "path",
		N:        24,
		Fault:    "receiver",
		P:        0.3,
		Seed:     3,
		Trials:   40,
	}
}

func postJob(t *testing.T, ts *httptest.Server, spec benchreport.JobSpec) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func metric(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestJobMatchesLocalSweep: the service's result line carries exactly the
// statistics a local unsharded sweep of the same spec produces.
func TestJobMatchesLocalSweep(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}))
	defer ts.Close()
	spec := testSpec()

	var snapshots []Line
	res, err := Submit(context.Background(), ts.URL, spec, func(l Line) { snapshots = append(snapshots, l) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "miss" {
		t.Fatalf("first submission X-Cache = %q, want miss", res.Cache)
	}

	sched, err := broadcast.LookupSchedule(spec.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	sw := sim.NewSweep(sim.SweepConfig{Workers: 1})
	row := sw.AddSchedule(sched, graph.Path(spec.N),
		mustResolve(t, spec).cfg, broadcast.ScheduleParams{}, spec.Trials, spec.Seed,
		scheduleValue)
	if err := sw.Run(); err != nil {
		t.Fatal(err)
	}
	want := row.Acc()

	st := res.Stats
	if st == nil {
		t.Fatal("result line has no stats")
	}
	if st.N != want.N() || st.Dropped != want.Dropped() {
		t.Fatalf("N/Dropped = %d/%d, want %d/%d", st.N, st.Dropped, want.N(), want.Dropped())
	}
	if *st.Sum != want.Sum() || *st.Min != want.Min() || *st.Max != want.Max() {
		t.Fatalf("sum/min/max = %v/%v/%v, want %v/%v/%v", *st.Sum, *st.Min, *st.Max, want.Sum(), want.Min(), want.Max())
	}
	if math.Abs(*st.Mean-want.Mean()) > 1e-12 {
		t.Fatalf("mean %v, want %v", *st.Mean, want.Mean())
	}
	wantShards := NewServer(Config{}).ShardPlan(spec.Trials)
	if res.Shards != wantShards {
		t.Fatalf("shards = %d, want %d", res.Shards, wantShards)
	}
	if len(snapshots) != wantShards-1 {
		t.Fatalf("%d snapshot lines for %d shards, want %d", len(snapshots), wantShards, wantShards-1)
	}
	for i, snap := range snapshots {
		if snap.ShardsDone != i+1 || snap.Shards != wantShards {
			t.Fatalf("snapshot %d: shards_done/shards = %d/%d", i, snap.ShardsDone, snap.Shards)
		}
		if snap.Stats.N+snap.Stats.Dropped >= spec.Trials {
			t.Fatalf("snapshot %d already covers all %d trials", i, spec.Trials)
		}
	}
}

func mustResolve(t *testing.T, spec benchreport.JobSpec) *job {
	t.Helper()
	jb, err := NewServer(Config{}).resolveJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	return jb
}

// TestCacheHitIsByteExact: the second submission replays the first body
// byte for byte, marked only by the X-Cache header, and the counters move.
func TestCacheHitIsByteExact(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}))
	defer ts.Close()

	resp1, body1 := postJob(t, ts, testSpec())
	resp2, body2 := postJob(t, ts, testSpec())
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("status %d / %d", resp1.StatusCode, resp2.StatusCode)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q", got)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit body differs from original:\n%s\n%s", body1, body2)
	}
	if resp1.Header.Get("X-Plan-Key") != resp2.Header.Get("X-Plan-Key") {
		t.Fatal("plan key differs across submissions")
	}
	if hits := metric(t, ts, "noisyserved_cache_hits_total"); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	if misses := metric(t, ts, "noisyserved_cache_misses_total"); misses != 1 {
		t.Fatalf("cache misses = %d, want 1", misses)
	}
	if inflight := metric(t, ts, "noisyserved_shards_inflight"); inflight != 0 {
		t.Fatalf("shards inflight after completion = %d", inflight)
	}

	// A different seed is a different plan key: misses again.
	other := testSpec()
	other.Seed = 4
	resp3, body3 := postJob(t, ts, other)
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("different-seed X-Cache = %q", got)
	}
	if bytes.Equal(body1, body3) {
		t.Fatal("different seed produced the identical body")
	}
}

// TestBodyDeterministicAcrossServers: a fresh process (fresh server)
// computes the byte-identical body — the cache's correctness claim.
func TestBodyDeterministicAcrossServers(t *testing.T) {
	var bodies [][]byte
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(NewServer(Config{Workers: 1 + i*3, TrialBatch: []int{0, sim.TrialBatchAuto}[i]}))
		_, body := postJob(t, ts, testSpec())
		ts.Close()
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("body differs across server configs:\n%s\n%s", bodies[0], bodies[1])
	}
}

// TestCoalescing: N concurrent identical submissions execute once; the
// followers wait and replay the identical bytes.
func TestCoalescing(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}))
	defer ts.Close()
	spec := testSpec()
	spec.Trials = 200 // long enough that the followers arrive mid-flight

	const clients = 4
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, bodies[i] = postJob(t, ts, spec)
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d body differs", i)
		}
	}
	if misses := metric(t, ts, "noisyserved_cache_misses_total"); misses != 1 {
		t.Fatalf("cache misses = %d, want 1 (one execution)", misses)
	}
	total := metric(t, ts, "noisyserved_cache_hits_total") + metric(t, ts, "noisyserved_coalesced_total")
	if total != clients-1 {
		t.Fatalf("hits+coalesced = %d, want %d", total, clients-1)
	}
}

// TestRejectsBadSpecs: malformed submissions are HTTP 400 with a JSON
// error, before any execution.
func TestRejectsBadSpecs(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}))
	defer ts.Close()
	cases := map[string]func(*benchreport.JobSpec){
		"unknown schedule": func(s *benchreport.JobSpec) { s.Schedule = "bogus" },
		"unknown fault":    func(s *benchreport.JobSpec) { s.Fault = "martian" },
		"unknown draw":     func(s *benchreport.JobSpec) { s.Draw = "v99" },
		"unknown topology": func(s *benchreport.JobSpec) { s.Topology = "moebius" },
		"zero trials":      func(s *benchreport.JobSpec) { s.Trials = 0 },
		"p out of range":   func(s *benchreport.JobSpec) { s.P = 1.5 },
		"tiny n":           func(s *benchreport.JobSpec) { s.N = 1 },
		"fastbc implicit":  func(s *benchreport.JobSpec) { s.Schedule = "fastbc"; s.N = 8192 },
	}
	for name, mut := range cases {
		spec := testSpec()
		mut(&spec)
		resp, body := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, resp.StatusCode, body)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: 400 body is not a JSON error: %s", name, body)
		}
	}
	// Unknown fields are rejected too (typo'd keys must not silently
	// default and then cache under the wrong plan).
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"schedule":"decay","topology":"path","n":24,"fault":"receiver","p":0.3,"seed":1,"trials":5,"engin":"dense"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
	if jobs := metric(t, ts, "noisyserved_jobs_total"); jobs != 0 {
		t.Fatalf("rejected specs counted as jobs: %d", jobs)
	}
}

// TestRuntimeErrorNotCached: a job that fails during execution (a radio
// config only the run validates) ends in an NDJSON error line and is
// never cached — the next submission re-executes.
func TestRuntimeErrorNotCached(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}))
	defer ts.Close()
	spec := testSpec()
	spec.Draw = "v3"
	spec.BurstBadP = 0.2 // below p: invalid, but only the run knows

	for round := 0; round < 2; round++ {
		resp, body := postJob(t, ts, spec)
		if resp.StatusCode != 200 {
			t.Fatalf("round %d: status %d", round, resp.StatusCode)
		}
		if resp.Header.Get("X-Cache") != "miss" {
			t.Fatalf("round %d: X-Cache = %q, want miss (errors are not cached)", round, resp.Header.Get("X-Cache"))
		}
		last := lastLine(t, body)
		if last.Type != "error" || last.Error == "" {
			t.Fatalf("round %d: terminal line %+v, want an error line", round, last)
		}
	}
	if errored := metric(t, ts, "noisyserved_jobs_errored_total"); errored != 2 {
		t.Fatalf("errored = %d, want 2", errored)
	}
	if _, err := Submit(context.Background(), ts.URL, spec, nil); err == nil || !strings.Contains(err.Error(), "job failed") {
		t.Fatalf("client Submit error = %v, want job-failed", err)
	}
}

func lastLine(t *testing.T, body []byte) Line {
	t.Helper()
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	var l Line
	if err := json.Unmarshal(lines[len(lines)-1], &l); err != nil {
		t.Fatalf("terminal line %s: %v", lines[len(lines)-1], err)
	}
	return l
}

// TestClientCancellation: a caller abandoning the job cancels the sweep;
// nothing is cached, and a later submission runs fresh.
func TestClientCancellation(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}))
	defer ts.Close()
	spec := testSpec()
	spec.N = 64
	spec.Trials = 20000 // long enough that a 20ms deadline lands mid-run

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := Submit(ctx, ts.URL, spec, nil); err == nil {
		t.Skip("job finished inside the cancellation window; machine too fast for this race")
	}
	// Wait for the server to finish aborting the flight (the error is
	// recorded when the leader's sweep drains), then resubmit: the
	// abandoned job must not have poisoned the cache.
	deadline := time.Now().Add(10 * time.Second)
	for metric(t, ts, "noisyserved_jobs_errored_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("aborted job never recorded as errored")
		}
		time.Sleep(5 * time.Millisecond)
	}
	res, err := Submit(context.Background(), ts.URL, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "miss" {
		t.Fatalf("post-cancel X-Cache = %q, want miss", res.Cache)
	}
	if res.Stats.N+res.Stats.Dropped != spec.Trials {
		t.Fatalf("post-cancel result covers %d trials, want %d", res.Stats.N+res.Stats.Dropped, spec.Trials)
	}
}

// TestLRUEviction: the cache honours its capacity, evicting the least
// recently used body.
func TestLRUEviction(t *testing.T) {
	c := newBodyCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}

	// End to end: a size-1 server cache forgets the older job.
	ts := httptest.NewServer(NewServer(Config{CacheSize: 1}))
	defer ts.Close()
	a, b := testSpec(), testSpec()
	b.Seed = 9
	postJob(t, ts, a)
	postJob(t, ts, b)
	resp, _ := postJob(t, ts, a)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("evicted job X-Cache = %q, want miss", got)
	}
}

// TestShardPlan pins the deterministic shard-count derivation.
func TestShardPlan(t *testing.T) {
	s := NewServer(Config{})
	for _, tc := range [][2]int{{1, 1}, {32, 1}, {33, 2}, {64, 2}, {256, 8}, {100000, 8}} {
		if got := s.ShardPlan(tc[0]); got != tc[1] {
			t.Errorf("ShardPlan(%d) = %d, want %d", tc[0], got, tc[1])
		}
	}
	fixed := NewServer(Config{Shards: 3})
	if got := fixed.ShardPlan(100000); got != 3 {
		t.Errorf("fixed ShardPlan = %d, want 3", got)
	}
}

// TestHealthz: liveness answers.
func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}
