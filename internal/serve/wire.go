package serve

import (
	"math"

	"noisyradio/internal/stats"
)

// Line is one NDJSON line of a job response stream. A stream is zero or
// more "snapshot" lines — snapshot k is the merge of shard accumulators
// 0..k, emitted when those shards have all completed — terminated by
// exactly one "result" line (the whole-job summary, carrying the plan
// key) or one "error" line. Because snapshots are prefix merges over a
// shard plan derived only from the spec, the entire stream is a pure
// function of the plan key; the server's result cache stores and replays
// the bytes verbatim.
type Line struct {
	Type       string `json:"type"` // "snapshot" | "result" | "error"
	Key        string `json:"key,omitempty"`
	Schedule   string `json:"schedule,omitempty"`
	Trials     int    `json:"trials,omitempty"`
	ShardsDone int    `json:"shards_done,omitempty"`
	Shards     int    `json:"shards,omitempty"`
	Stats      *Stats `json:"stats,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Stats is a JSON-safe rendering of one stats.Accumulator state. Fields
// that are NaN in the accumulator (everything but the counts while no
// trial has succeeded; the failed-trial sentinel would be illegal JSON)
// are nil and omitted from the wire form.
type Stats struct {
	N       int      `json:"n"`
	Dropped int      `json:"dropped"`
	Sum     *float64 `json:"sum,omitempty"`
	Mean    *float64 `json:"mean,omitempty"`
	Stddev  *float64 `json:"stddev,omitempty"`
	CI95    *float64 `json:"ci95,omitempty"`
	Min     *float64 `json:"min,omitempty"`
	Max     *float64 `json:"max,omitempty"`
	P10     *float64 `json:"p10,omitempty"`
	P50     *float64 `json:"p50,omitempty"`
	P90     *float64 `json:"p90,omitempty"`
}

func finite(x float64) *float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil
	}
	return &x
}

// newStats renders an accumulator snapshot for the wire.
func newStats(acc *stats.Accumulator) *Stats {
	s := &Stats{N: acc.N(), Dropped: acc.Dropped()}
	if acc.N() == 0 {
		return s
	}
	s.Sum = finite(acc.Sum())
	s.Mean = finite(acc.Mean())
	s.Stddev = finite(acc.Stddev())
	s.CI95 = finite(acc.CI95())
	s.Min = finite(acc.Min())
	s.Max = finite(acc.Max())
	s.P10 = finite(acc.P10())
	s.P50 = finite(acc.Median())
	s.P90 = finite(acc.P90())
	return s
}
