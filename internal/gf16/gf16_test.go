package gf16

import (
	"testing"
	"testing/quick"
)

func TestMulMatchesSlowSampled(t *testing.T) {
	// Exhaustive 2^32 is too much; sample a structured grid plus quick.
	for a := 0; a < 1<<16; a += 257 {
		for b := 0; b < 1<<16; b += 263 {
			if Mul(uint16(a), uint16(b)) != MulSlow(uint16(a), uint16(b)) {
				t.Fatalf("Mul(%d,%d) != MulSlow", a, b)
			}
		}
	}
}

func TestQuickMulMatchesSlow(t *testing.T) {
	f := func(a, b uint16) bool {
		return Mul(a, b) == MulSlow(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldAxioms(t *testing.T) {
	f := func(a, b, c uint16) bool {
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestInvDiv(t *testing.T) {
	f := func(a uint16) bool {
		if a == 0 {
			return true
		}
		return Mul(a, Inv(a)) == 1 && Div(1, a) == Inv(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
	if Div(0, 7) != 0 {
		t.Fatal("Div(0,b) != 0")
	}
}

func TestDivInvPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"div":  func() { Div(1, 0) },
		"inv":  func() { Inv(0) },
		"mvec": func() { MulVec(make([]uint16, 1), make([]uint16, 2), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestExpOrder(t *testing.T) {
	if Exp(0) != 1 || Exp(Order) != 1 {
		t.Fatal("generator order wrong")
	}
	if Exp(1) != generator {
		t.Fatal("Exp(1) != generator")
	}
}

func TestMulVecAndScaleVec(t *testing.T) {
	dst := []uint16{1, 2, 0, 65535}
	src := []uint16{7, 0, 9, 3}
	want := make([]uint16, len(dst))
	for i := range want {
		want[i] = dst[i] ^ Mul(5, src[i])
	}
	MulVec(dst, src, 5)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVec mismatch at %d", i)
		}
	}
	v := []uint16{3, 4}
	ScaleVec(v, 0)
	if v[0] != 0 || v[1] != 0 {
		t.Fatal("ScaleVec(0) did not zero")
	}
	v = []uint16{3, 4}
	ScaleVec(v, 1)
	if v[0] != 3 || v[1] != 4 {
		t.Fatal("ScaleVec(1) changed values")
	}
	v = []uint16{3, 4}
	ScaleVec(v, 9)
	if v[0] != Mul(3, 9) || v[1] != Mul(4, 9) {
		t.Fatal("ScaleVec(9) wrong")
	}
}

func BenchmarkMul(b *testing.B) {
	var acc uint16
	for i := 0; i < b.N; i++ {
		acc ^= Mul(uint16(i), uint16(i>>3)|1)
	}
	_ = acc
}
