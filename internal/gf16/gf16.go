// Package gf16 implements arithmetic over GF(2^16) with the primitive
// polynomial x^16 + x^12 + x^3 + x + 1 (0x1100B).
//
// It exists to lift internal/rs's 256-shard ceiling: coding schedules that
// conceptually transmit thousands of distinct Reed–Solomon packets (star,
// WCT, single-link at large k) can be realised with actual payloads via
// internal/rs16, whose field this package provides. Tables cost ~512 KiB
// and are built once at load (a deterministic pure computation).
package gf16

// poly is the reduction polynomial with the x^16 term implicit.
const poly = 0x100B

// generator is a primitive element (x, i.e. 2, since the polynomial is
// primitive).
const generator = 2

// Order is the multiplicative group order 2^16 - 1.
const Order = 1<<16 - 1

var (
	expTable [2 * Order]uint16
	logTable [1 << 16]uint16
)

// Table construction is the one legitimate init use: deterministic, no IO.
func init() {
	x := uint16(1)
	for i := 0; i < Order; i++ {
		expTable[i] = x
		expTable[i+Order] = x
		logTable[x] = uint16(i)
		x = mulSlow(x, generator)
	}
	if x != 1 {
		// The generator must have order exactly 2^16-1; anything else means
		// the polynomial constant above was corrupted.
		panic("gf16: generator does not have full order")
	}
}

// mulSlow is carry-less multiplication with reduction, used to build the
// tables and as a test oracle.
func mulSlow(a, b uint16) uint16 {
	var p uint16
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		carry := a & 0x8000
		a <<= 1
		if carry != 0 {
			a ^= poly
		}
		b >>= 1
	}
	return p
}

// MulSlow exposes the table-free multiplication for cross-checking.
func MulSlow(a, b uint16) uint16 { return mulSlow(a, b) }

// Add returns a + b (XOR; its own inverse).
func Add(a, b uint16) uint16 { return a ^ b }

// Mul returns a * b.
func Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b; it panics on division by zero.
func Div(a, b uint16) uint16 {
	if b == 0 {
		panic("gf16: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])-int(logTable[b])+Order]
}

// Inv returns the multiplicative inverse of a; it panics on zero.
func Inv(a uint16) uint16 {
	if a == 0 {
		panic("gf16: inverse of zero")
	}
	return expTable[Order-int(logTable[a])]
}

// Exp returns generator^e for e >= 0.
func Exp(e int) uint16 { return expTable[e%Order] }

// MulVec sets dst[i] ^= c * src[i] for all i; dst and src must have the
// same length.
func MulVec(dst, src []uint16, c uint16) {
	if len(dst) != len(src) {
		panic("gf16: MulVec length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range dst {
			dst[i] ^= src[i]
		}
		return
	}
	lc := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[lc+int(logTable[s])]
		}
	}
}

// ScaleVec multiplies every element of v by c in place.
func ScaleVec(v []uint16, c uint16) {
	if c == 1 {
		return
	}
	if c == 0 {
		for i := range v {
			v[i] = 0
		}
		return
	}
	lc := int(logTable[c])
	for i, s := range v {
		if s != 0 {
			v[i] = expTable[lc+int(logTable[s])]
		}
	}
}
