// Package gbst builds the gathering–broadcasting spanning trees (GBSTs) of
// Gąsieniec, Peleg and Xin that the FASTBC family of algorithms runs on
// (Section 3.4.2 of the paper).
//
// A ranked BFS tree assigns every node an integral rank: leaves have rank 1;
// a node whose children have maximum rank r gets rank r if exactly one child
// attains r and rank r+1 otherwise. A ranked BFS tree is a GBST iff no two
// distinct nodes on the same level with the same rank r have two distinct
// parents both of rank r — equivalently, each (level, rank) pair carries at
// most one fast edge (an edge connecting a node to a same-rank child).
//
// Construction: ranks are computed bottom-up over a BFS tree; whenever a
// (level, rank) pair would carry more than one fast edge, all but one of the
// offending parents are promoted one rank, which turns their edge into a
// slow (rank-decreasing) edge. Promotion preserves the two properties the
// broadcast algorithms rely on: ranks are non-increasing along root-to-leaf
// paths, and every equal-rank tree edge is a fast edge, so any root-to-leaf
// path decomposes into at most MaxRank fast stretches joined by at most
// MaxRank slow edges. This re-ranking is visible in the paper's own Figure
// 1(a)→1(b). MaxRank stays O(log n) (Gaber–Mansour bound plus promotions;
// asserted empirically by the tests).
package gbst

import (
	"errors"
	"fmt"

	"noisyradio/internal/graph"
)

// ErrDisconnected is returned when the source cannot reach every node.
var ErrDisconnected = errors.New("gbst: graph is not connected from the source")

// Tree is a ranked BFS spanning tree with the GBST property.
type Tree struct {
	Src int
	// Parent[v] is v's tree parent, or -1 for the source.
	Parent []int32
	// Level[v] is the BFS distance from the source.
	Level []int32
	// Rank[v] is the (possibly promoted) rank of v; >= 1.
	Rank []int32
	// FastChild[v] is the unique child with Rank equal to Rank[v], or -1.
	// A node with FastChild[v] != -1 is a "fast node" and the edge to that
	// child is a "fast edge".
	FastChild []int32
	// MaxRank is the maximum rank in the tree (rmax in the paper).
	MaxRank int
	// Depth is the maximum level (the eccentricity of the source).
	Depth int
}

// Build constructs a GBST of g rooted at src. It returns ErrDisconnected if
// any node is unreachable from src.
func Build(g *graph.Graph, src int) (*Tree, error) {
	n := g.N()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("gbst: source %d out of range [0,%d)", src, n)
	}
	level := g.BFS(src)
	depth := 0
	for v, d := range level {
		if d == -1 {
			return nil, fmt.Errorf("%w: node %d unreachable", ErrDisconnected, v)
		}
		if int(d) > depth {
			depth = int(d)
		}
	}

	// Pick BFS parents: the smallest-id neighbour one level up.
	parent := make([]int32, n)
	for v := 0; v < n; v++ {
		parent[v] = -1
		if v == src {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if level[u] == level[v]-1 {
				parent[v] = u
				break
			}
		}
	}

	// Children lists and per-level buckets.
	children := make([][]int32, n)
	for v := 0; v < n; v++ {
		if p := parent[v]; p != -1 {
			children[p] = append(children[p], int32(v))
		}
	}
	byLevel := make([][]int32, depth+1)
	for v := 0; v < n; v++ {
		byLevel[level[v]] = append(byLevel[level[v]], int32(v))
	}

	rank := make([]int32, n)
	fastChild := make([]int32, n)
	for i := range fastChild {
		fastChild[i] = -1
	}

	// Bottom-up ranking with per-(level, rank) fast-edge deduplication.
	for l := depth; l >= 0; l-- {
		for _, v := range byLevel[l] {
			maxR, count := int32(0), 0
			var fc int32 = -1
			for _, c := range children[v] {
				switch {
				case rank[c] > maxR:
					maxR, count, fc = rank[c], 1, c
				case rank[c] == maxR:
					count++
				}
			}
			switch {
			case len(children[v]) == 0:
				rank[v] = 1
			case count == 1:
				rank[v] = maxR
				fastChild[v] = fc
			default:
				rank[v] = maxR + 1
			}
		}
		// Promotion pass: at most one fast node per rank on this level.
		seen := make(map[int32]bool)
		for _, v := range byLevel[l] {
			if fastChild[v] == -1 {
				continue
			}
			r := rank[v]
			if seen[r] {
				rank[v] = r + 1
				fastChild[v] = -1
			} else {
				seen[r] = true
			}
		}
	}

	maxRank := int32(1)
	for _, r := range rank {
		if r > maxRank {
			maxRank = r
		}
	}
	return &Tree{
		Src:       src,
		Parent:    parent,
		Level:     level,
		Rank:      rank,
		FastChild: fastChild,
		MaxRank:   int(maxRank),
		Depth:     depth,
	}, nil
}

// IsFast reports whether v is a fast node (has a same-rank child).
func (t *Tree) IsFast(v int) bool { return t.FastChild[v] != -1 }

// N returns the number of nodes in the tree.
func (t *Tree) N() int { return len(t.Parent) }

// PathToSource returns the tree path from v up to the source, inclusive.
func (t *Tree) PathToSource(v int) []int32 {
	path := []int32{int32(v)}
	for t.Parent[v] != -1 {
		v = int(t.Parent[v])
		path = append(path, int32(v))
	}
	return path
}

// FastStretches decomposes the root-to-v tree path into its maximal runs of
// fast edges, returning the length (edge count) of each run in root-to-leaf
// order. The total number of runs is at most MaxRank.
func (t *Tree) FastStretches(v int) []int {
	// Walk from the root down to v.
	up := t.PathToSource(v)
	var stretches []int
	run := 0
	for i := len(up) - 1; i > 0; i-- {
		parent, child := up[i], up[i-1]
		if t.FastChild[parent] == child {
			run++
		} else if run > 0 {
			stretches = append(stretches, run)
			run = 0
		}
	}
	if run > 0 {
		stretches = append(stretches, run)
	}
	return stretches
}

// Verify checks all structural invariants of the tree against g:
// BFS-tree validity, the rank rules (allowing promotions), fast-child
// consistency, and the GBST property. It returns nil if all hold.
func (t *Tree) Verify(g *graph.Graph) error {
	n := g.N()
	if len(t.Parent) != n || len(t.Level) != n || len(t.Rank) != n || len(t.FastChild) != n {
		return fmt.Errorf("gbst: tree arrays sized for %d nodes, graph has %d", len(t.Parent), n)
	}
	dist := g.BFS(t.Src)
	for v := 0; v < n; v++ {
		if t.Level[v] != dist[v] {
			return fmt.Errorf("gbst: node %d level %d != BFS distance %d", v, t.Level[v], dist[v])
		}
		if v == t.Src {
			if t.Parent[v] != -1 {
				return fmt.Errorf("gbst: source has parent %d", t.Parent[v])
			}
			continue
		}
		p := t.Parent[v]
		if p < 0 {
			return fmt.Errorf("gbst: node %d has no parent", v)
		}
		if !g.HasEdge(int(p), v) {
			return fmt.Errorf("gbst: tree edge (%d,%d) not in graph", p, v)
		}
		if t.Level[p] != t.Level[v]-1 {
			return fmt.Errorf("gbst: edge (%d,%d) does not step one level", p, v)
		}
		if t.Rank[v] < 1 {
			return fmt.Errorf("gbst: node %d has rank %d < 1", v, t.Rank[v])
		}
		if t.Rank[p] < t.Rank[v] {
			return fmt.Errorf("gbst: child %d rank %d exceeds parent %d rank %d", v, t.Rank[v], p, t.Rank[p])
		}
	}
	// Fast-child consistency: FastChild is a real same-rank child, and no
	// node has two same-rank children.
	sameRankChildren := make(map[int32]int32, n) // parent -> count packed
	for v := 0; v < n; v++ {
		p := t.Parent[v]
		if p != -1 && t.Rank[p] == t.Rank[v] {
			sameRankChildren[p]++
			if t.FastChild[p] != int32(v) {
				return fmt.Errorf("gbst: node %d has same-rank child %d not marked fast", p, v)
			}
		}
	}
	for p, cnt := range sameRankChildren {
		if cnt > 1 {
			return fmt.Errorf("gbst: node %d has %d same-rank children", p, cnt)
		}
	}
	for v := 0; v < n; v++ {
		fc := t.FastChild[v]
		if fc == -1 {
			continue
		}
		if t.Parent[fc] != int32(v) {
			return fmt.Errorf("gbst: fast child %d of %d is not its tree child", fc, v)
		}
		if t.Rank[fc] != t.Rank[v] {
			return fmt.Errorf("gbst: fast edge (%d,%d) joins ranks %d and %d", v, fc, t.Rank[v], t.Rank[fc])
		}
	}
	// GBST property: at most one fast node per (level, rank).
	type lr struct{ level, rank int32 }
	seen := make(map[lr]int32)
	for v := 0; v < n; v++ {
		if t.FastChild[v] == -1 {
			continue
		}
		key := lr{level: t.Level[v], rank: t.Rank[v]}
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("gbst: GBST violation: fast nodes %d and %d share level %d rank %d",
				prev, v, key.level, key.rank)
		}
		seen[key] = int32(v)
	}
	return nil
}
