package gbst

import (
	"strings"
	"testing"

	"noisyradio/internal/graph"
	"noisyradio/internal/rng"
)

// corrupt builds a valid GBST on a random graph, applies mutate, and
// asserts Verify rejects it with a message containing want.
func corrupt(t *testing.T, want string, mutate func(tree *Tree, g *graph.Graph)) {
	t.Helper()
	top := graph.GNP(60, 0.08, rng.New(77))
	tree, err := Build(top.G, top.Source)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(top.G); err != nil {
		t.Fatalf("baseline tree invalid: %v", err)
	}
	mutate(tree, top.G)
	err = tree.Verify(top.G)
	if err == nil {
		t.Fatalf("corruption %q not detected", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("corruption %q reported as %q", want, err.Error())
	}
}

func TestVerifyCatchesWrongLevel(t *testing.T) {
	corrupt(t, "level", func(tree *Tree, g *graph.Graph) {
		// Claim some non-source node is at distance 0.
		for v := range tree.Level {
			if v != tree.Src {
				tree.Level[v] = 0
				return
			}
		}
	})
}

func TestVerifyCatchesMissingParent(t *testing.T) {
	corrupt(t, "no parent", func(tree *Tree, g *graph.Graph) {
		for v := range tree.Parent {
			if v != tree.Src {
				tree.Parent[v] = -1
				return
			}
		}
	})
}

func TestVerifyCatchesSourceWithParent(t *testing.T) {
	corrupt(t, "source has parent", func(tree *Tree, g *graph.Graph) {
		tree.Parent[tree.Src] = int32((tree.Src + 1) % len(tree.Parent))
	})
}

func TestVerifyCatchesNonEdgeParent(t *testing.T) {
	corrupt(t, "not in graph", func(tree *Tree, g *graph.Graph) {
		// Re-parent some node to a same-level non-neighbour at level-1.
		for v := 0; v < g.N(); v++ {
			if v == tree.Src || tree.Level[v] < 1 {
				continue
			}
			for u := 0; u < g.N(); u++ {
				if tree.Level[u] == tree.Level[v]-1 && !g.HasEdge(u, v) {
					tree.Parent[v] = int32(u)
					return
				}
			}
		}
		panic("no candidate found; enlarge test graph")
	})
}

func TestVerifyCatchesZeroRank(t *testing.T) {
	corrupt(t, "rank 0", func(tree *Tree, g *graph.Graph) {
		// Zero out a leaf's rank (a leaf: no node points to it as parent).
		isParent := make([]bool, g.N())
		for v := range tree.Parent {
			if p := tree.Parent[v]; p >= 0 {
				isParent[p] = true
			}
		}
		for v := range tree.Rank {
			if !isParent[v] && v != tree.Src {
				tree.Rank[v] = 0
				return
			}
		}
	})
}

func TestVerifyCatchesRankInversion(t *testing.T) {
	corrupt(t, "exceeds parent", func(tree *Tree, g *graph.Graph) {
		for v := range tree.Parent {
			if p := tree.Parent[v]; p >= 0 {
				tree.Rank[v] = tree.Rank[p] + 5
				// Keep the fast-child marker consistent with "same rank"
				// checks: the parent cannot claim v as fast now.
				if tree.FastChild[p] == int32(v) {
					tree.FastChild[p] = -1
				}
				return
			}
		}
	})
}

func TestVerifyCatchesUnmarkedFastChild(t *testing.T) {
	corrupt(t, "not marked fast", func(tree *Tree, g *graph.Graph) {
		// Find a fast node and clear its marker while ranks still match.
		for v := range tree.FastChild {
			if tree.FastChild[v] != -1 {
				tree.FastChild[v] = -1
				return
			}
		}
		panic("no fast node in baseline; enlarge test graph")
	})
}

func TestVerifyCatchesBogusFastChild(t *testing.T) {
	corrupt(t, "fast", func(tree *Tree, g *graph.Graph) {
		// Point a non-fast node's marker at a child of lower rank.
		for v := range tree.Parent {
			p := tree.Parent[v]
			if p >= 0 && tree.Rank[p] > tree.Rank[v] && tree.FastChild[p] == -1 {
				tree.FastChild[p] = int32(v)
				return
			}
		}
		panic("no candidate found")
	})
}

func TestVerifyCatchesArraySizeMismatch(t *testing.T) {
	top := graph.Path(5)
	tree, err := Build(top.G, top.Source)
	if err != nil {
		t.Fatal(err)
	}
	tree.Rank = tree.Rank[:3]
	if err := tree.Verify(top.G); err == nil {
		t.Fatal("size mismatch not detected")
	}
}

func TestVerifyCatchesGBSTViolation(t *testing.T) {
	// Hand-build the naive (non-GBST) ranked tree of the Figure 1 scenario:
	// two same-level rank-1 fast nodes.
	b := graph.NewBuilder(7)
	// 0 -> {1,2}; 1 -> 3 -> 5; 2 -> 4 -> 6. Both 1 and 2 are fast at rank 1
	// on level 1 under naive ranking.
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 6}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()
	tree := &Tree{
		Src:       0,
		Parent:    []int32{-1, 0, 0, 1, 2, 3, 4},
		Level:     []int32{0, 1, 1, 2, 2, 3, 3},
		Rank:      []int32{2, 1, 1, 1, 1, 1, 1},
		FastChild: []int32{-1, 3, 4, 5, 6, -1, -1},
		MaxRank:   2,
		Depth:     3,
	}
	err := tree.Verify(g)
	if err == nil {
		t.Fatal("GBST violation not detected")
	}
	if !strings.Contains(err.Error(), "GBST violation") {
		t.Fatalf("wrong error: %v", err)
	}
	// And Build on the same graph must produce a tree that passes.
	built, err := Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := built.Verify(g); err != nil {
		t.Fatalf("Build result invalid: %v", err)
	}
}
