package gbst

import (
	"errors"
	"testing"
	"testing/quick"

	"noisyradio/internal/graph"
	"noisyradio/internal/rng"
)

func build(t *testing.T, top graph.Topology) *Tree {
	t.Helper()
	tree, err := Build(top.G, top.Source)
	if err != nil {
		t.Fatalf("Build(%s): %v", top.Name, err)
	}
	if err := tree.Verify(top.G); err != nil {
		t.Fatalf("Verify(%s): %v", top.Name, err)
	}
	return tree
}

func TestBuildPath(t *testing.T) {
	tree := build(t, graph.Path(8))
	// A path is a single fast stretch of rank 1.
	if tree.MaxRank != 1 {
		t.Fatalf("MaxRank = %d, want 1", tree.MaxRank)
	}
	for v := 0; v < 7; v++ {
		if tree.FastChild[v] != int32(v+1) {
			t.Fatalf("node %d fast child = %d, want %d", v, tree.FastChild[v], v+1)
		}
	}
	stretches := tree.FastStretches(7)
	if len(stretches) != 1 || stretches[0] != 7 {
		t.Fatalf("FastStretches = %v, want [7]", stretches)
	}
}

func TestBuildStar(t *testing.T) {
	tree := build(t, graph.Star(6))
	// Hub has 6 rank-1 children, so hub rank is 2 and nothing is fast.
	if tree.Rank[0] != 2 {
		t.Fatalf("hub rank = %d, want 2", tree.Rank[0])
	}
	for v := 1; v <= 6; v++ {
		if tree.Rank[v] != 1 {
			t.Fatalf("leaf %d rank = %d, want 1", v, tree.Rank[v])
		}
	}
	if tree.IsFast(0) {
		t.Fatal("hub should not be fast")
	}
}

func TestBuildSingleNode(t *testing.T) {
	tree := build(t, graph.Path(1))
	if tree.MaxRank != 1 || tree.Depth != 0 {
		t.Fatalf("tree = %+v", tree)
	}
}

func TestBuildDisconnected(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	if _, err := Build(g, 0); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestBuildBadSource(t *testing.T) {
	g := graph.Path(3).G
	if _, err := Build(g, 5); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	// A complete binary tree of depth d has root rank d+1 and the rank of a
	// node at depth i is d+1-i (every internal node has two equal-rank
	// children, so ranks bump at every level). This is the canonical
	// worst case for MaxRank = Θ(log n).
	const depth = 6
	n := (1 << (depth + 1)) - 1
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, (v-1)/2)
	}
	g := b.MustBuild()
	tree, err := Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(g); err != nil {
		t.Fatal(err)
	}
	if tree.Rank[0] != depth+1 {
		t.Fatalf("root rank = %d, want %d", tree.Rank[0], depth+1)
	}
	if tree.MaxRank != depth+1 {
		t.Fatalf("MaxRank = %d, want %d", tree.MaxRank, depth+1)
	}
}

// TestPaperFigure1 builds the graph from Figure 1 of the paper, in which a
// naive ranked BFS tree violates the GBST property, and checks our
// construction produces a verified GBST on it.
func TestPaperFigure1(t *testing.T) {
	// Level structure mirroring the figure: a root, two subtrees whose
	// same-level same-rank nodes would both be fast under naive ranking.
	//
	//          0            (root)
	//        /   \
	//       1     2         (level 1)
	//      / \   / \
	//     3   4 5   6       (level 2)
	//     |   | |   |
	//     7   8 9  10       (level 3)
	//
	// Nodes 3..6 each have one rank-1 child, so all four are fast at rank 1
	// on level 2 under naive ranking — a GBST must keep at most one.
	b := graph.NewBuilder(11)
	edges := [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}, {3, 7}, {4, 8}, {5, 9}, {6, 10}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()
	tree, err := Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(g); err != nil {
		t.Fatal(err)
	}
	fastAtLevel2 := 0
	for _, v := range []int{3, 4, 5, 6} {
		if tree.IsFast(v) && tree.Rank[v] == 1 {
			fastAtLevel2++
		}
	}
	if fastAtLevel2 != 1 {
		t.Fatalf("level 2 rank 1 has %d fast nodes, want exactly 1", fastAtLevel2)
	}
}

func TestFastStretchCountBoundedByMaxRank(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		top := graph.GNP(200, 0.02, r.Split())
		tree := build(t, top)
		for v := 0; v < top.G.N(); v++ {
			s := tree.FastStretches(v)
			if len(s) > tree.MaxRank {
				t.Fatalf("trial %d node %d: %d stretches > MaxRank %d", trial, v, len(s), tree.MaxRank)
			}
		}
	}
}

func TestRanksNonIncreasingOnPaths(t *testing.T) {
	top := graph.GNP(300, 0.02, rng.New(2))
	tree := build(t, top)
	for v := 0; v < top.G.N(); v++ {
		path := tree.PathToSource(v)
		for i := 0; i+1 < len(path); i++ {
			child, parent := path[i], path[i+1]
			if tree.Rank[parent] < tree.Rank[child] {
				t.Fatalf("rank increases from %d to %d along path", parent, child)
			}
		}
	}
}

func TestMaxRankLogarithmic(t *testing.T) {
	// MaxRank should stay O(log n) even with promotions. Allow a factor-2
	// envelope over ceil(log2 n) + 1.
	r := rng.New(3)
	for _, n := range []int{64, 256, 1024} {
		for trial := 0; trial < 5; trial++ {
			top := graph.GNP(n, 4.0/float64(n), r.Split())
			tree := build(t, top)
			bound := 2*graph.Log2Ceil(n) + 2
			if tree.MaxRank > bound {
				t.Fatalf("n=%d: MaxRank %d exceeds %d", n, tree.MaxRank, bound)
			}
		}
	}
}

func TestGridAndTreeTopologies(t *testing.T) {
	tops := []graph.Topology{
		graph.Grid(8, 8),
		graph.Grid(1, 20),
		graph.RandomTree(100, rng.New(4)),
		graph.Complete(16),
		graph.Layered(5, 4),
	}
	for _, top := range tops {
		tree := build(t, top)
		if tree.Depth != top.G.Eccentricity(top.Source) {
			t.Fatalf("%s: depth %d != eccentricity %d", top.Name, tree.Depth, top.G.Eccentricity(top.Source))
		}
	}
}

func TestPathToSource(t *testing.T) {
	tree := build(t, graph.Path(5))
	path := tree.PathToSource(4)
	want := []int32{4, 3, 2, 1, 0}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

// Property: Build always yields a tree passing Verify on random connected
// graphs, and MaxRank is within the logarithmic envelope.
func TestQuickBuildVerifies(t *testing.T) {
	f := func(seed uint64, nRaw uint8, dense bool) bool {
		n := int(nRaw)%100 + 2
		p := 2.0 / float64(n)
		if dense {
			p = 0.3
		}
		top := graph.GNP(n, p, rng.New(seed))
		tree, err := Build(top.G, top.Source)
		if err != nil {
			return false
		}
		if err := tree.Verify(top.G); err != nil {
			return false
		}
		return tree.MaxRank <= 2*graph.Log2Ceil(n)+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: every fast stretch length is positive and their sum is at most
// the node's level.
func TestQuickStretchSums(t *testing.T) {
	f := func(seed uint64) bool {
		top := graph.GNP(80, 0.05, rng.New(seed))
		tree, err := Build(top.G, top.Source)
		if err != nil {
			return false
		}
		for v := 0; v < top.G.N(); v++ {
			sum := 0
			for _, s := range tree.FastStretches(v) {
				if s <= 0 {
					return false
				}
				sum += s
			}
			if sum > int(tree.Level[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	top := graph.GNP(4096, 0.002, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(top.G, top.Source); err != nil {
			b.Fatal(err)
		}
	}
}
