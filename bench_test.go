package noisyradio

// One benchmark per reproduced table/figure, named after the experiment ids
// of DESIGN.md. Each regenerates its experiment (quick sweep) per
// iteration; `go test -bench=E9 -v` prints the table itself via -v runs of
// the corresponding tests in internal/experiments.
//
// Additional micro-benchmarks cover the hot substrates (radio rounds, RLNC
// decoding, GBST construction) — see the per-package *_test.go files.

import (
	"testing"

	"noisyradio/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(experiments.Config{Quick: true, Seed: 1})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

func BenchmarkE1DecayFaultless(b *testing.B)          { benchExperiment(b, "E1") }
func BenchmarkE2FASTBCFaultless(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3DecayNoisy(b *testing.B)              { benchExperiment(b, "E3") }
func BenchmarkE4FASTBCNoisy(b *testing.B)             { benchExperiment(b, "E4") }
func BenchmarkE5RobustFASTBC(b *testing.B)            { benchExperiment(b, "E5") }
func BenchmarkE6RLNCThroughput(b *testing.B)          { benchExperiment(b, "E6") }
func BenchmarkE7StarRouting(b *testing.B)             { benchExperiment(b, "E7") }
func BenchmarkE8StarCoding(b *testing.B)              { benchExperiment(b, "E8") }
func BenchmarkE9StarGap(b *testing.B)                 { benchExperiment(b, "E9") }
func BenchmarkE10WCTCollisionFree(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11WCTRouting(b *testing.B)             { benchExperiment(b, "E11") }
func BenchmarkE12WCTCoding(b *testing.B)              { benchExperiment(b, "E12") }
func BenchmarkE13WorstCaseGap(b *testing.B)           { benchExperiment(b, "E13") }
func BenchmarkE14SenderTransformRouting(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkE15SenderTransformCoding(b *testing.B)  { benchExperiment(b, "E15") }
func BenchmarkE16SingleLinkNonAdaptive(b *testing.B)  { benchExperiment(b, "E16") }
func BenchmarkE17SingleLinkAdaptive(b *testing.B)     { benchExperiment(b, "E17") }
func BenchmarkE18SingleLinkGap(b *testing.B)          { benchExperiment(b, "E18") }
func BenchmarkE19PipelinedBatchRouting(b *testing.B)  { benchExperiment(b, "E19") }
func BenchmarkF1GBSTBuild(b *testing.B)               { benchExperiment(b, "F1") }
func BenchmarkF2WCTBuild(b *testing.B)                { benchExperiment(b, "F2") }
func BenchmarkA1BlockSizeAblation(b *testing.B)       { benchExperiment(b, "A1") }
func BenchmarkA2RepetitionAblation(b *testing.B)      { benchExperiment(b, "A2") }
func BenchmarkA3UnknownNDecay(b *testing.B)           { benchExperiment(b, "A3") }

// BenchmarkSingleBroadcastAlgorithms compares the three single-message
// algorithms head-to-head on a noisy grid — the library's headline hot
// path.
func BenchmarkSingleBroadcastAlgorithms(b *testing.B) {
	top := Grid(24, 24)
	cfg := Config{Fault: ReceiverFaults, P: 0.3}
	b.Run("decay", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := Decay(top, cfg, NewRand(uint64(i)), Options{})
			if err != nil || !res.Success {
				b.Fatalf("%v %+v", err, res)
			}
		}
	})
	b.Run("fastbc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := FASTBC(top, cfg, NewRand(uint64(i)), Options{})
			if err != nil || !res.Success {
				b.Fatalf("%v %+v", err, res)
			}
		}
	})
	b.Run("robust-fastbc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := RobustFASTBC(top, cfg, NewRand(uint64(i)), Options{}, RobustParams{})
			if err != nil || !res.Success {
				b.Fatalf("%v %+v", err, res)
			}
		}
	})
}

// BenchmarkSingleBroadcastEngines runs Decay on a dense random graph under
// each execution engine: outputs are bit-identical, so the ratio is pure
// engine speedup on the library's public entry points.
func BenchmarkSingleBroadcastEngines(b *testing.B) {
	top := GNP(512, 0.3, NewRand(11))
	for _, eng := range []Engine{EngineSparse, EngineDense} {
		b.Run(eng.String(), func(b *testing.B) {
			cfg := Config{Fault: ReceiverFaults, P: 0.3, Engine: eng}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Decay(top, cfg, NewRand(uint64(i)), Options{})
				if err != nil || !res.Success {
					b.Fatalf("%v %+v", err, res)
				}
			}
		})
	}
}

// BenchmarkStarCodingEngines measures the Lemma 16 Reed–Solomon star
// schedule under each engine. The star has average degree ~2, so the
// sparse engine wins here — this is the counterweight benchmark that
// documents why EngineAuto selects by average degree instead of always
// going dense.
func BenchmarkStarCodingEngines(b *testing.B) {
	for _, eng := range []Engine{EngineSparse, EngineDense} {
		b.Run(eng.String(), func(b *testing.B) {
			cfg := Config{Fault: ReceiverFaults, P: 0.5, Engine: eng}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := StarCoding(1024, 16, cfg, NewRand(uint64(i)), Options{})
				if err != nil || !res.Success {
					b.Fatalf("%v %+v", err, res)
				}
			}
		})
	}
}

// BenchmarkRLNCGridBroadcast measures the coded multi-message pipeline
// end-to-end, including Gaussian-elimination decoding at every node.
func BenchmarkRLNCGridBroadcast(b *testing.B) {
	top := Grid(5, 5)
	cfg := Config{Fault: SenderFaults, P: 0.2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRand(uint64(i))
		msgs := RandomMessages(8, 8, r)
		res, _, err := RLNCBroadcast(top, cfg, msgs, RLNCDecay, r, RLNCOptions{})
		if err != nil || !res.Success {
			b.Fatalf("%v %+v", err, res)
		}
	}
}
