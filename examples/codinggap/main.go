// Coding gap demo (Theorem 17): on the star topology with receiver faults,
// Reed–Solomon coding broadcasts k messages in Θ(k) rounds while the best
// adaptive routing needs Θ(k log n) — a Θ(log n) throughput gap that grows
// visibly as the star widens.
//
//	go run ./examples/codinggap
package main

import (
	"fmt"
	"log"

	"noisyradio"
)

func main() {
	const k = 64
	cfg := noisyradio.Config{Fault: noisyradio.ReceiverFaults, P: 0.5}
	fmt.Printf("star topology, k=%d messages, receiver faults p=%.1f\n\n", k, cfg.P)
	fmt.Printf("%8s  %14s  %14s  %8s\n", "leaves", "routing rounds", "coding rounds", "gap")

	for _, leaves := range []int{64, 256, 1024, 4096} {
		r := noisyradio.NewRand(uint64(7 + leaves))
		routing, err := noisyradio.StarRouting(leaves, k, cfg, r, noisyradio.Options{})
		if err != nil || !routing.Success {
			log.Fatalf("routing leaves=%d: %v %+v", leaves, err, routing)
		}
		coding, err := noisyradio.StarCoding(leaves, k, cfg, r, noisyradio.Options{})
		if err != nil || !coding.Success {
			log.Fatalf("coding leaves=%d: %v %+v", leaves, err, coding)
		}
		gap := float64(routing.Rounds) / float64(coding.Rounds)
		fmt.Printf("%8d  %14d  %14d  %8.2f\n", leaves, routing.Rounds, coding.Rounds, gap)
	}

	fmt.Println("\nRouting must repeat each message until the unluckiest leaf hears it")
	fmt.Println("(Θ(log n) repetitions, Lemma 15); coding sends fresh packets every round")
	fmt.Println("and any k of them decode (Lemma 16). The gap column grows with log n.")
}
