// Worst-case topology gap demo (Theorem 24): on the WCT — the paper's
// hardest broadcast instance — adaptive routing pays two log factors per
// message (the Lemma 18 collision ceiling times the per-cluster star) while
// coding pays one, so the coding gap grows as Θ(log n).
//
//	go run ./examples/wctgap
package main

import (
	"fmt"
	"log"

	"noisyradio"
)

func main() {
	const k = 8
	cfg := noisyradio.Config{Fault: noisyradio.ReceiverFaults, P: 0.5}
	fmt.Printf("worst-case topology (WCT), k=%d messages, receiver faults p=%.1f\n\n", k, cfg.P)
	fmt.Printf("%8s %9s %10s  %14s  %14s  %6s\n", "target n", "actual n", "clusters", "routing rounds", "coding rounds", "gap")

	for _, n := range []int{512, 1024, 2048} {
		r := noisyradio.NewRand(uint64(100 + n))
		w := noisyradio.NewWCT(noisyradio.DefaultWCTParams(n), r)
		routing, err := noisyradio.WCTRouting(w, k, cfg, r, noisyradio.Options{})
		if err != nil || !routing.Success {
			log.Fatalf("routing n=%d: %v %+v", n, err, routing)
		}
		coding, err := noisyradio.WCTCoding(w, k, cfg, r, noisyradio.Options{})
		if err != nil || !coding.Success {
			log.Fatalf("coding n=%d: %v %+v", n, err, coding)
		}
		gap := float64(routing.Rounds) / float64(coding.Rounds)
		fmt.Printf("%8d %9d %10d  %14d  %14d  %6.2f\n",
			n, w.G.N(), w.NumClusters(), routing.Rounds, coding.Rounds, gap)
	}

	fmt.Println("\nEach WCT cluster hears a collision-free packet in only ~1/log n of the")
	fmt.Println("rounds (Lemma 18); routing must then win a per-cluster coupon race per")
	fmt.Println("message (Lemma 15) while coding banks any k packets (Lemma 23). The gap")
	fmt.Println("column grows with log n — the paper's headline Theorem 24.")
}
