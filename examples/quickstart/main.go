// Quickstart: broadcast one message through a noisy radio network with each
// of the paper's three algorithms and compare round counts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"noisyradio"
)

func main() {
	// A 32×32 grid: 1024 nodes, diameter 62, source in a corner.
	top := noisyradio.Grid(32, 32)

	// Receiver faults with p = 0.3: every otherwise-successful reception is
	// independently destroyed with probability 0.3.
	cfg := noisyradio.Config{Fault: noisyradio.ReceiverFaults, P: 0.3}

	r := noisyradio.NewRand(42)

	decay, err := noisyradio.Decay(top, cfg, r, noisyradio.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fastbc, err := noisyradio.FASTBC(top, cfg, r, noisyradio.Options{})
	if err != nil {
		log.Fatal(err)
	}
	robust, err := noisyradio.RobustFASTBC(top, cfg, r, noisyradio.Options{}, noisyradio.RobustParams{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("topology: %s (n=%d, D=%d), noise: %s p=%.1f\n\n",
		top.Name, top.G.N(), top.G.Eccentricity(top.Source), cfg.Fault, cfg.P)
	fmt.Printf("%-15s %8s  %s\n", "algorithm", "rounds", "success")
	for _, row := range []struct {
		name string
		res  noisyradio.Result
	}{
		{name: "decay", res: decay},
		{name: "fastbc", res: fastbc},
		{name: "robust-fastbc", res: robust},
	} {
		fmt.Printf("%-15s %8d  %v\n", row.name, row.res.Rounds, row.res.Success)
	}
	fmt.Println("\nDecay needs no topology knowledge; FASTBC and Robust FASTBC build a")
	fmt.Println("GBST from the known topology. Under noise, Robust FASTBC (Theorem 11)")
	fmt.Println("retains FASTBC's diameter-linearity while FASTBC's wave degrades (Lemma 10).")
}
