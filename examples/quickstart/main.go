// Quickstart: broadcast one message through a noisy radio network with each
// of the paper's three algorithms — selected from the Schedule registry —
// and compare round counts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"noisyradio"
)

func main() {
	// A 32×32 grid: 1024 nodes, diameter 62, source in a corner.
	top := noisyradio.Grid(32, 32)

	// Receiver faults with p = 0.3: every otherwise-successful reception is
	// independently destroyed with probability 0.3.
	cfg := noisyradio.Config{Fault: noisyradio.ReceiverFaults, P: 0.3}

	r := noisyradio.NewRand(42)

	fmt.Printf("topology: %s (n=%d, D=%d), noise: %s p=%.1f\n\n",
		top.Name, top.G.N(), top.G.Eccentricity(top.Source), cfg.Fault, cfg.P)
	fmt.Printf("%-15s %-12s %8s  %s\n", "schedule", "paper ref", "rounds", "success")

	// Every schedule of the paper is one registry entry; Run is the single
	// execution entry point. ScheduleParams{} selects each schedule's
	// defaults (these three need none).
	for _, name := range []string{"decay", "fastbc", "robust-fastbc"} {
		sched, err := noisyradio.LookupSchedule(name)
		if err != nil {
			log.Fatal(err)
		}
		out, err := noisyradio.Run(sched, top, cfg, r, noisyradio.ScheduleParams{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %-12s %8d  %v\n", sched.Name, sched.Ref, out.Rounds, out.Success)
	}

	fmt.Println("\nDecay needs no topology knowledge; FASTBC and Robust FASTBC build a")
	fmt.Println("GBST from the known topology. Under noise, Robust FASTBC (Theorem 11)")
	fmt.Println("retains FASTBC's diameter-linearity while FASTBC's wave degrades (Lemma 10).")
	fmt.Println("\nList every schedule with `noisysim -schedule list`; run one with")
	fmt.Println("`noisysim -schedule star-coding -n 64 -k 16 -trials 100`.")
}
