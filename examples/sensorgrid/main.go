// Sensor-grid scenario: a base station floods k sensor-calibration messages
// through a lossy wireless grid using random linear network coding on top
// of Decay (Lemma 12). Every node re-mixes what it has heard; the payloads
// are verified bit-for-bit at the far corner after decoding.
//
//	go run ./examples/sensorgrid
package main

import (
	"bytes"
	"fmt"
	"log"

	"noisyradio"
)

func main() {
	const (
		side       = 8  // 8×8 sensor grid
		k          = 16 // calibration messages
		payloadLen = 16 // bytes per message
	)
	top := noisyradio.Grid(side, side)
	cfg := noisyradio.Config{Fault: noisyradio.SenderFaults, P: 0.25}
	r := noisyradio.NewRand(2024)

	msgs := noisyradio.RandomMessages(k, payloadLen, r)
	fmt.Printf("flooding %d messages of %dB through a %dx%d grid, %s p=%.2f\n",
		k, payloadLen, side, side, cfg.Fault, cfg.P)

	res, decoded, err := noisyradio.RLNCBroadcast(top, cfg, msgs, noisyradio.RLNCDecay, r, noisyradio.RLNCOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Success {
		log.Fatalf("broadcast incomplete: %d/%d nodes decoded after %d rounds", res.Done, top.G.N(), res.Rounds)
	}
	for i := range msgs {
		if !bytes.Equal(decoded[i], msgs[i]) {
			log.Fatalf("message %d corrupted in transit", i)
		}
	}

	fmt.Printf("\nall %d nodes decoded all %d messages in %d rounds\n", res.Done, k, res.Rounds)
	fmt.Printf("throughput: %.3f messages/round (Lemma 12 promises Ω(1/log n))\n", res.Throughput(k))
	fmt.Printf("channel: %d broadcasts, %d deliveries, %d collisions, %d sender-fault losses\n",
		res.Channel.Broadcasts, res.Channel.Deliveries, res.Channel.Collisions, res.Channel.SenderFaults)
	fmt.Println("payloads verified bit-for-bit after Gaussian-elimination decode")
}
