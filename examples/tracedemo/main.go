// Trace demo: record a Robust FASTBC broadcast round by round on a small
// noisy path and render the execution timeline — the same machinery behind
// `noisysim -demo`. Useful for *seeing* the odd-round Decay steps and the
// even-round block waves interleave.
//
//	go run ./examples/tracedemo
package main

import (
	"fmt"
	"log"

	"noisyradio"
	"noisyradio/internal/trace"
)

func main() {
	top := noisyradio.Path(30)
	cfg := noisyradio.Config{Fault: noisyradio.ReceiverFaults, P: 0.3}
	rec := trace.NewRecorder(top.G.N())

	res, err := noisyradio.RobustFASTBC(top, cfg, noisyradio.NewRand(7),
		noisyradio.Options{Trace: rec.Observe}, noisyradio.RobustParams{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("robust-fastbc on %s, %s p=%.1f\n", top.Name, cfg.Fault, cfg.P)
	fmt.Printf("result: success=%v rounds=%d\n", res.Success, res.Rounds)
	fmt.Println(rec.Summary())
	fmt.Println()
	fmt.Print(rec.Timeline(30))
	fmt.Println("\nlegend: B = broadcast, r = received, . = idle.")
	fmt.Println("Watch the message hop along consecutive columns (the block wave)")
	fmt.Println("and the occasional bursty rows (the interleaved Decay steps).")
}
