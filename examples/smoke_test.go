// Package examples holds runnable demo binaries, one per subdirectory.
// This smoke test builds and runs every one of them, so refactors of the
// facade or the engines cannot silently break the documented entry points.
package examples

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun builds and runs each example binary end to end and
// checks its closing output marker — the line each demo prints only after
// its verification (decode check, success assertion, timeline render)
// passed. The demos' built-in parameters are already smoke-sized: the
// whole set completes in about a second.
func TestExamplesRun(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	for _, tt := range []struct {
		dir    string
		marker string
	}{
		{"quickstart", "robust-fastbc"},
		{"sensorgrid", "payloads verified bit-for-bit"},
		{"codinggap", "coding rounds"},
		{"wctgap", "Theorem 24"},
		{"tracedemo", "legend: B = broadcast"},
	} {
		t.Run(tt.dir, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, goBin, "run", "./examples/"+tt.dir)
			cmd.Dir = ".." // module root, so the ./examples/... path resolves
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", tt.dir, err, out)
			}
			if !strings.Contains(string(out), tt.marker) {
				t.Fatalf("examples/%s output missing %q:\n%s", tt.dir, tt.marker, out)
			}
		})
	}
}
