// Command noisyserved runs the sweep service: a persistent HTTP server
// that executes broadcast-schedule sweep jobs, streams partial statistics
// as shards complete, and caches finished results under their canonical
// plan key so a repeated submission is a byte-exact replay instead of a
// re-execution.
//
// Usage:
//
//	noisyserved -addr :8091
//	noisyserved -addr 127.0.0.1:0 -cache 4096 -workers 8
//
// Endpoints:
//
//	POST /v1/jobs   submit a job spec (JSON), receive an NDJSON stream of
//	                prefix-merge snapshots and a terminal result line;
//	                the X-Cache header reports hit | miss | coalesced
//	GET  /metrics   plain-text counters (jobs, cache hits/misses, ...)
//	GET  /healthz   liveness
//
// The job spec vocabulary is the CLI's: schedule name from the registry,
// topology name, n, k, fault model, p, draw contract and its parameters,
// seed and trials (see noisysim -submit, which speaks it). SIGTERM and
// SIGINT drain gracefully: the listener closes, in-flight jobs run to
// completion (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"noisyradio/internal/serve"
	"noisyradio/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "noisyserved:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("noisyserved", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8091", "listen address (host:port; port 0 picks a free port)")
		cacheSize  = fs.Int("cache", 1024, "result cache capacity in finished job bodies (LRU)")
		shards     = fs.Int("shards", 0, "fixed shard count per job (0 = derive from trials: min(8, ceil(trials/32)))")
		workers    = fs.Int("workers", 0, "sweep worker pool size per job (0 = GOMAXPROCS)")
		trialBatch = fs.String("trialbatch", "auto", "lockstep trial-batch plan: auto | 0 (scalar) | W; output identical at every setting")
		drain      = fs.Duration("drain", 30*time.Second, "max time to wait for in-flight jobs on SIGTERM/SIGINT")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tb, err := parseTrialBatch(*trialBatch)
	if err != nil {
		return err
	}
	if *cacheSize < 1 {
		return fmt.Errorf("-cache must be >= 1, got %d", *cacheSize)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", *shards)
	}

	handler := serve.NewServer(serve.Config{
		CacheSize:  *cacheSize,
		Shards:     *shards,
		Workers:    *workers,
		TrialBatch: tb,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// The bound address is printed (not just the flag) so port-0 callers —
	// tests, the CI smoke job — can discover where to submit.
	fmt.Fprintf(out, "noisyserved: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining
	fmt.Fprintf(out, "noisyserved: draining (up to %s)\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "noisyserved: drained, bye")
	return nil
}

// parseTrialBatch converts the -trialbatch flag exactly as noisysim does:
// "auto" plans per row, "0"/"1" force scalar, an explicit W forces that
// width.
func parseTrialBatch(s string) (int, error) {
	if s == "auto" {
		return sim.TrialBatchAuto, nil
	}
	var w int
	if _, err := fmt.Sscanf(s, "%d", &w); err != nil || w < 0 || w > sim.MaxTrialBatch {
		return 0, fmt.Errorf("invalid -trialbatch %q (auto, 0 or 1..%d)", s, sim.MaxTrialBatch)
	}
	return w, nil
}
