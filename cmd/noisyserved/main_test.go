package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"noisyradio/internal/benchreport"
	"noisyradio/internal/serve"
)

// TestServeSubmitDrain exercises the full daemon lifecycle in-process:
// boot on an ephemeral port, serve a job, then drain cleanly on SIGTERM
// (NotifyContext catches the self-sent signal before the runtime would).
func TestServeSubmitDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-drain", "10s"}, f) }()

	// The daemon prints its bound address; poll for it.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("daemon never printed its address")
		}
		time.Sleep(10 * time.Millisecond)
		data, _ := os.ReadFile(path)
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(line, "noisyserved: listening on "); ok {
				addr = strings.TrimSpace(rest)
			}
		}
	}

	spec := benchreport.JobSpec{
		Schedule: "decay", Topology: "path", N: 24,
		Fault: "receiver", P: 0.3, Seed: 3, Trials: 20,
	}
	res, err := serve.Submit(context.Background(), "http://"+addr, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.N+res.Stats.Dropped != spec.Trials {
		t.Fatalf("job result incomplete: %+v", res.Line)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain within 15s of SIGTERM")
	}
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), "drained, bye") {
		t.Fatalf("missing drain confirmation:\n%s", data)
	}
}

// TestFlagValidation pins the usage errors.
func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-cache", "0"},
		{"-shards", "-1"},
		{"-trialbatch", "bogus"},
		{"-trialbatch", "-2"},
	} {
		f, err := os.Create(filepath.Join(t.TempDir(), "out.txt"))
		if err != nil {
			t.Fatal(err)
		}
		if runErr := run(args, f); runErr == nil {
			t.Errorf("args %v accepted", args)
		}
		f.Close()
	}
}
