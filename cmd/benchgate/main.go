// Command benchgate compares a fresh `noisysim -benchjson` report against
// a checked-in baseline and fails (exit 1) when suite wall clock regresses
// beyond the allowed fraction, or when any engine microbenchmark shared
// with the baseline regresses beyond its own (more generous, since single
// measurements are noisier) fraction. CI runs it after the quick-suite
// benchmark so a PR that slows the whole experiment pipeline — or just the
// per-round engine hot path, which a fast suite can hide — breaks the
// build. Microbenchmarks present only in the current report (newly added
// rows) pass: they gate from the next baseline refresh on.
//
// Usage:
//
//	benchgate -baseline .github/bench/BENCH_sweep.baseline.json -current BENCH_sweep.json
//	benchgate -baseline a.json -current b.json -max-regression 0.30 -max-microbench-regression 0.50
//
// Wall-clock baselines are machine-relative, so the gate only hard-fails
// when the baseline was recorded on the same machine class (equal
// gomaxprocs). On a class mismatch it reports the comparison, asks for the
// baseline to be regenerated from this runner's artifact, and exits 0 —
// a baseline recorded on a different box must not fail unrelated PRs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"noisyradio/internal/benchreport"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "checked-in baseline BENCH_sweep.json")
		currentPath  = flag.String("current", "", "freshly generated BENCH_sweep.json")
		maxReg       = flag.Float64("max-regression", 0.30, "maximum allowed fractional wall-clock regression")
		maxMicroReg  = flag.Float64("max-microbench-regression", 0.50, "maximum allowed fractional ns/round regression per engine microbenchmark")
		minBatchSpd  = flag.Float64("min-stepbatch-speedup", 0, "minimum required scalar-stepset/stepbatch ns-per-trial-round ratio at w=8 on dense/complete n=1024 (0 disables)")
		minGeomSpd   = flag.Float64("min-geomskip-speedup", 0, "minimum required v1/v2 faultdraw ns-per-round ratio at p=0.001 n=100000 (0 disables)")
		maxBurstRat  = flag.Float64("max-burstdraw-ratio", 0, "maximum allowed v3/v2 faultdraw ns-per-round ratio at matched p=0.001 n=100000 (0 disables)")
		minCacheSpd  = flag.Float64("min-cachehit-speedup", 0, "minimum required cold/hit request-time ratio for the sweep-service result cache (0 disables)")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}
	baseline, err := benchreport.Load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	current, err := benchreport.Load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	verdict, err := gate(baseline, current, *maxReg, *maxMicroReg)
	fmt.Println("benchgate:", verdict)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL:", err)
		os.Exit(1)
	}
	if *minBatchSpd > 0 {
		verdict, err := gateStepBatch(current, *minBatchSpd)
		if verdict != "" {
			fmt.Println("benchgate:", verdict)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", err)
			os.Exit(1)
		}
	}
	if *minGeomSpd > 0 {
		verdict, err := gateGeomSkip(current, *minGeomSpd)
		if verdict != "" {
			fmt.Println("benchgate:", verdict)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", err)
			os.Exit(1)
		}
	}
	if *maxBurstRat > 0 {
		verdict, err := gateBurstDraw(current, *maxBurstRat)
		if verdict != "" {
			fmt.Println("benchgate:", verdict)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", err)
			os.Exit(1)
		}
	}
	if *minCacheSpd > 0 {
		verdict, err := gateCacheHit(current, *minCacheSpd)
		if verdict != "" {
			fmt.Println("benchgate:", verdict)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", err)
			os.Exit(1)
		}
	}
}

// The microbenchmark rows the sweep-service cache gate compares: one
// representative job submitted cold (executes the sharded sweep) and
// again as a cache hit (replays the stored body), both measured as ns per
// HTTP round trip (serve.CacheMicrobench).
const (
	cacheColdRow = "servecache/cold/decay-complete-4096"
	cacheHitRow  = "servecache/hit/decay-complete-4096"
)

// gateCacheHit enforces the result-cache acceptance floor against the
// *current* report alone: replaying a cached job body must be at least
// minSpeedup times faster than executing the job, end to end through the
// HTTP stack. Like the other absolute gates no baseline is involved — a
// cache hit that recomputes anything (or a cold path that got suspiciously
// cheap, breaking the contrast) fails regardless of history.
func gateCacheHit(current benchreport.Report, minSpeedup float64) (string, error) {
	rows := make(map[string]benchreport.Microbench, len(current.Microbench))
	for _, m := range current.Microbench {
		rows[m.Name] = m
	}
	cold, okC := rows[cacheColdRow]
	hit, okH := rows[cacheHitRow]
	if !okC || !okH {
		return "", fmt.Errorf("cachehit gate: report lacks %q or %q", cacheColdRow, cacheHitRow)
	}
	if cold.NsPerRound <= 0 || hit.NsPerRound <= 0 {
		return "", fmt.Errorf("cachehit gate: non-positive ns/request (cold %.1f, hit %.1f)", cold.NsPerRound, hit.NsPerRound)
	}
	speedup := cold.NsPerRound / hit.NsPerRound
	summary := fmt.Sprintf("servecache hit %.0f ns/request vs cold %.0f: %.0fx (floor %.0fx)",
		hit.NsPerRound, cold.NsPerRound, speedup, minSpeedup)
	if speedup < minSpeedup {
		return summary, fmt.Errorf("%s", summary)
	}
	return "ok — " + summary, nil
}

// The microbenchmark rows the trial-batching speedup gate compares: the
// scalar set-native round and the width-8 batched round (both ns per
// trial-round) on the dense engine's home benchmark topology.
const (
	stepBatchScalarRow = "stepset/dense/complete/faultless/n=1024"
	stepBatchBatchRow  = "stepbatch/w=8/dense/complete/faultless/n=1024"
)

// gateStepBatch enforces the trial-batching acceptance floor against the
// *current* report alone: the width-8 StepBatch microbenchmark must be at
// least minSpeedup times cheaper per trial-round than scalar StepSet on
// the same schedule. Unlike the regression gates this is an absolute
// property of the engine, so no baseline is involved.
func gateStepBatch(current benchreport.Report, minSpeedup float64) (string, error) {
	rows := make(map[string]benchreport.Microbench, len(current.Microbench))
	for _, m := range current.Microbench {
		rows[m.Name] = m
	}
	scalar, okS := rows[stepBatchScalarRow]
	batch, okB := rows[stepBatchBatchRow]
	if !okS || !okB {
		return "", fmt.Errorf("stepbatch gate: report lacks %q or %q", stepBatchScalarRow, stepBatchBatchRow)
	}
	if scalar.NsPerRound <= 0 || batch.NsPerRound <= 0 {
		return "", fmt.Errorf("stepbatch gate: non-positive ns/round (scalar %.1f, batch %.1f)", scalar.NsPerRound, batch.NsPerRound)
	}
	speedup := scalar.NsPerRound / batch.NsPerRound
	summary := fmt.Sprintf("stepbatch w=8 %.0f ns/trial-round vs scalar %.0f: %.2fx (floor %.2fx)",
		batch.NsPerRound, scalar.NsPerRound, speedup, minSpeedup)
	if speedup < minSpeedup {
		return summary, fmt.Errorf("%s", summary)
	}
	return "ok — " + summary, nil
}

// The microbenchmark rows the geometric-skip speedup gate compares: the
// sender-fault draw kernel over 10⁵ sites per round in the sparse-failure
// regime (p = 0.001), under the per-site Bernoulli contract (v1) and the
// geometric-skip contract (v2).
const (
	geomSkipV1Row = "faultdraw/v1/p=0.001/n=100000"
	geomSkipV2Row = "faultdraw/v2/p=0.001/n=100000"
)

// gateGeomSkip enforces the draw-contract acceptance floor against the
// *current* report alone: at sparse fault rates the geometric-skip draw
// (v2) must be at least minSpeedup times cheaper per round than the
// per-site Bernoulli draw (v1) on the same site count. Like the stepbatch
// floor this is an absolute property of the kernel, so no baseline is
// involved.
func gateGeomSkip(current benchreport.Report, minSpeedup float64) (string, error) {
	rows := make(map[string]benchreport.Microbench, len(current.Microbench))
	for _, m := range current.Microbench {
		rows[m.Name] = m
	}
	v1, ok1 := rows[geomSkipV1Row]
	v2, ok2 := rows[geomSkipV2Row]
	if !ok1 || !ok2 {
		return "", fmt.Errorf("geomskip gate: report lacks %q or %q", geomSkipV1Row, geomSkipV2Row)
	}
	if v1.NsPerRound <= 0 || v2.NsPerRound <= 0 {
		return "", fmt.Errorf("geomskip gate: non-positive ns/round (v1 %.1f, v2 %.1f)", v1.NsPerRound, v2.NsPerRound)
	}
	speedup := v1.NsPerRound / v2.NsPerRound
	summary := fmt.Sprintf("faultdraw v2 %.0f ns/round vs v1 %.0f at p=0.001 n=100000: %.2fx (floor %.2fx)",
		v2.NsPerRound, v1.NsPerRound, speedup, minSpeedup)
	if speedup < minSpeedup {
		return summary, fmt.Errorf("%s", summary)
	}
	return "ok — " + summary, nil
}

// The microbenchmark rows the burst-draw overhead gate compares: the same
// sparse-regime draw kernel under the Gilbert–Elliott contract (v3, default
// burst shape) and the geometric-skip contract (v2) at the same marginal p.
const (
	burstDrawV2Row = "faultdraw/v2/p=0.001/n=100000"
	burstDrawV3Row = "faultdraw/v3/p=0.001/n=100000"
)

// gateBurstDraw enforces the correlated-noise acceptance ceiling against
// the *current* report alone: the v3 burst sampler — one geometric per
// phase plus a Bernoulli per bad site — must stay within maxRatio times
// the v2 geometric-skip cost at the same marginal fault rate. Bursts buy
// correlation structure, not speed, so the gate is a ceiling where the
// geomskip gate is a floor; it keeps a careless v3 bulk walk from
// regressing to per-site cost while still allowing the honest overhead of
// tracking two phases.
func gateBurstDraw(current benchreport.Report, maxRatio float64) (string, error) {
	rows := make(map[string]benchreport.Microbench, len(current.Microbench))
	for _, m := range current.Microbench {
		rows[m.Name] = m
	}
	v2, ok2 := rows[burstDrawV2Row]
	v3, ok3 := rows[burstDrawV3Row]
	if !ok2 || !ok3 {
		return "", fmt.Errorf("burstdraw gate: report lacks %q or %q", burstDrawV2Row, burstDrawV3Row)
	}
	if v2.NsPerRound <= 0 || v3.NsPerRound <= 0 {
		return "", fmt.Errorf("burstdraw gate: non-positive ns/round (v2 %.1f, v3 %.1f)", v2.NsPerRound, v3.NsPerRound)
	}
	ratio := v3.NsPerRound / v2.NsPerRound
	summary := fmt.Sprintf("faultdraw v3 %.0f ns/round vs v2 %.0f at p=0.001 n=100000: %.2fx (ceiling %.2fx)",
		v3.NsPerRound, v2.NsPerRound, ratio, maxRatio)
	if ratio > maxRatio {
		return summary, fmt.Errorf("%s", summary)
	}
	return "ok — " + summary, nil
}

// gate returns a human-readable verdict and a non-nil error when current
// regresses more than maxReg (a fraction, e.g. 0.30 for 30%) in suite wall
// clock, or more than maxMicroReg in any engine microbenchmark both
// reports share, against a comparable baseline. Reports from different
// machine classes (gomaxprocs mismatch) never fail: the verdict asks for a
// baseline refresh instead.
func gate(baseline, current benchreport.Report, maxReg, maxMicroReg float64) (string, error) {
	if baseline.WallSeconds <= 0 {
		return "", fmt.Errorf("baseline wall clock %.3fs is not positive — regenerate the baseline", baseline.WallSeconds)
	}
	if current.WallSeconds <= 0 {
		return "", fmt.Errorf("current wall clock %.3fs is not positive", current.WallSeconds)
	}
	if baseline.Suite != current.Suite || baseline.Quick != current.Quick {
		return "", fmt.Errorf("reports not comparable: baseline (suite=%q quick=%v) vs current (suite=%q quick=%v)",
			baseline.Suite, baseline.Quick, current.Suite, current.Quick)
	}
	summary := fmt.Sprintf("wall %.2fs vs baseline %.2fs (%+.0f%%, budget %.0f%%), %.0f rows/s, %.1f allocs/trial",
		current.WallSeconds, baseline.WallSeconds,
		100*(current.WallSeconds/baseline.WallSeconds-1), 100*maxReg,
		current.RowsPerSec, current.AllocsPerTrial)
	if baseline.GoMaxProcs != current.GoMaxProcs {
		return fmt.Sprintf("SKIPPED (machine class changed: baseline gomaxprocs=%d, current=%d) — regenerate the baseline from this runner's BENCH_sweep.json artifact; %s",
			baseline.GoMaxProcs, current.GoMaxProcs, summary), nil
	}
	if ratio := current.WallSeconds / baseline.WallSeconds; ratio > 1+maxReg {
		return summary, fmt.Errorf("wall clock %.2fs is %.0f%% over the %.2fs baseline (budget %.0f%%)",
			current.WallSeconds, 100*(ratio-1), baseline.WallSeconds, 100*maxReg)
	}
	if err := gateMicrobench(baseline.Microbench, current.Microbench, maxMicroReg); err != nil {
		return summary, err
	}
	return "ok — " + summary, nil
}

// gateMicrobench fails when any microbenchmark present in both reports
// regresses in ns/round beyond maxMicroReg, or allocates per round where
// the baseline did not. Rows only one side has are ignored: removing a row
// is a deliberate edit reviewed with the baseline, and a new row starts
// gating once a refreshed baseline records it.
func gateMicrobench(baseline, current []benchreport.Microbench, maxMicroReg float64) error {
	base := make(map[string]benchreport.Microbench, len(baseline))
	for _, m := range baseline {
		base[m.Name] = m
	}
	var violations []string
	for _, m := range current {
		b, ok := base[m.Name]
		if !ok || b.NsPerRound <= 0 {
			continue
		}
		if ratio := m.NsPerRound / b.NsPerRound; ratio > 1+maxMicroReg {
			violations = append(violations, fmt.Sprintf("%s: %.0f ns/round is %.0f%% over the %.0f ns baseline",
				m.Name, m.NsPerRound, 100*(ratio-1), b.NsPerRound))
		}
		if m.AllocsPerRound > b.AllocsPerRound {
			violations = append(violations, fmt.Sprintf("%s: %.2f allocs/round, baseline had %.2f",
				m.Name, m.AllocsPerRound, b.AllocsPerRound))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d microbenchmark regression(s) (budget %.0f%%):\n  %s",
			len(violations), 100*maxMicroReg, strings.Join(violations, "\n  "))
	}
	return nil
}
