// Command benchgate compares a fresh `noisysim -benchjson` report against
// a checked-in baseline and fails (exit 1) when suite wall clock regresses
// beyond the allowed fraction, or when any engine microbenchmark shared
// with the baseline regresses beyond its own (more generous, since single
// measurements are noisier) fraction. CI runs it after the quick-suite
// benchmark so a PR that slows the whole experiment pipeline — or just the
// per-round engine hot path, which a fast suite can hide — breaks the
// build. Microbenchmarks present only in the current report (newly added
// rows) pass: they gate from the next baseline refresh on.
//
// Usage:
//
//	benchgate -baseline .github/bench/BENCH_sweep.baseline.json -current BENCH_sweep.json
//	benchgate -baseline a.json -current b.json -max-regression 0.30 -max-microbench-regression 0.50
//
// Wall-clock baselines are machine-relative, so the gate only hard-fails
// when the baseline was recorded on the same machine class (equal
// gomaxprocs). On a class mismatch it reports the comparison, asks for the
// baseline to be regenerated from this runner's artifact, and exits 0 —
// a baseline recorded on a different box must not fail unrelated PRs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"noisyradio/internal/benchreport"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "checked-in baseline BENCH_sweep.json")
		currentPath  = flag.String("current", "", "freshly generated BENCH_sweep.json")
		maxReg       = flag.Float64("max-regression", 0.30, "maximum allowed fractional wall-clock regression")
		maxMicroReg  = flag.Float64("max-microbench-regression", 0.50, "maximum allowed fractional ns/round regression per engine microbenchmark")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}
	baseline, err := benchreport.Load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	current, err := benchreport.Load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	verdict, err := gate(baseline, current, *maxReg, *maxMicroReg)
	fmt.Println("benchgate:", verdict)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL:", err)
		os.Exit(1)
	}
}

// gate returns a human-readable verdict and a non-nil error when current
// regresses more than maxReg (a fraction, e.g. 0.30 for 30%) in suite wall
// clock, or more than maxMicroReg in any engine microbenchmark both
// reports share, against a comparable baseline. Reports from different
// machine classes (gomaxprocs mismatch) never fail: the verdict asks for a
// baseline refresh instead.
func gate(baseline, current benchreport.Report, maxReg, maxMicroReg float64) (string, error) {
	if baseline.WallSeconds <= 0 {
		return "", fmt.Errorf("baseline wall clock %.3fs is not positive — regenerate the baseline", baseline.WallSeconds)
	}
	if current.WallSeconds <= 0 {
		return "", fmt.Errorf("current wall clock %.3fs is not positive", current.WallSeconds)
	}
	if baseline.Suite != current.Suite || baseline.Quick != current.Quick {
		return "", fmt.Errorf("reports not comparable: baseline (suite=%q quick=%v) vs current (suite=%q quick=%v)",
			baseline.Suite, baseline.Quick, current.Suite, current.Quick)
	}
	summary := fmt.Sprintf("wall %.2fs vs baseline %.2fs (%+.0f%%, budget %.0f%%), %.0f rows/s, %.1f allocs/trial",
		current.WallSeconds, baseline.WallSeconds,
		100*(current.WallSeconds/baseline.WallSeconds-1), 100*maxReg,
		current.RowsPerSec, current.AllocsPerTrial)
	if baseline.GoMaxProcs != current.GoMaxProcs {
		return fmt.Sprintf("SKIPPED (machine class changed: baseline gomaxprocs=%d, current=%d) — regenerate the baseline from this runner's BENCH_sweep.json artifact; %s",
			baseline.GoMaxProcs, current.GoMaxProcs, summary), nil
	}
	if ratio := current.WallSeconds / baseline.WallSeconds; ratio > 1+maxReg {
		return summary, fmt.Errorf("wall clock %.2fs is %.0f%% over the %.2fs baseline (budget %.0f%%)",
			current.WallSeconds, 100*(ratio-1), baseline.WallSeconds, 100*maxReg)
	}
	if err := gateMicrobench(baseline.Microbench, current.Microbench, maxMicroReg); err != nil {
		return summary, err
	}
	return "ok — " + summary, nil
}

// gateMicrobench fails when any microbenchmark present in both reports
// regresses in ns/round beyond maxMicroReg, or allocates per round where
// the baseline did not. Rows only one side has are ignored: removing a row
// is a deliberate edit reviewed with the baseline, and a new row starts
// gating once a refreshed baseline records it.
func gateMicrobench(baseline, current []benchreport.Microbench, maxMicroReg float64) error {
	base := make(map[string]benchreport.Microbench, len(baseline))
	for _, m := range baseline {
		base[m.Name] = m
	}
	var violations []string
	for _, m := range current {
		b, ok := base[m.Name]
		if !ok || b.NsPerRound <= 0 {
			continue
		}
		if ratio := m.NsPerRound / b.NsPerRound; ratio > 1+maxMicroReg {
			violations = append(violations, fmt.Sprintf("%s: %.0f ns/round is %.0f%% over the %.0f ns baseline",
				m.Name, m.NsPerRound, 100*(ratio-1), b.NsPerRound))
		}
		if m.AllocsPerRound > b.AllocsPerRound {
			violations = append(violations, fmt.Sprintf("%s: %.2f allocs/round, baseline had %.2f",
				m.Name, m.AllocsPerRound, b.AllocsPerRound))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d microbenchmark regression(s) (budget %.0f%%):\n  %s",
			len(violations), 100*maxMicroReg, strings.Join(violations, "\n  "))
	}
	return nil
}
