package main

import (
	"strings"
	"testing"

	"noisyradio/internal/benchreport"
)

func rep(wall float64) benchreport.Report {
	return benchreport.Report{Suite: "all", Quick: true, GoMaxProcs: 4, WallSeconds: wall}
}

func TestGateWithinBudget(t *testing.T) {
	if _, err := gate(rep(10), rep(12.9), 0.30); err != nil {
		t.Fatalf("29%% regression rejected at 30%% budget: %v", err)
	}
}

func TestGateOverBudget(t *testing.T) {
	_, err := gate(rep(10), rep(13.1), 0.30)
	if err == nil {
		t.Fatal("31% regression accepted at 30% budget")
	}
	if !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestGateImprovementAlwaysPasses(t *testing.T) {
	if _, err := gate(rep(10), rep(3), 0.30); err != nil {
		t.Fatalf("improvement rejected: %v", err)
	}
}

func TestGateMachineClassMismatchSkips(t *testing.T) {
	baseline := rep(1)
	baseline.GoMaxProcs = 1
	current := rep(10) // 10x slower but on a different machine class
	verdict, err := gate(baseline, current, 0.30)
	if err != nil {
		t.Fatalf("cross-machine comparison failed the gate: %v", err)
	}
	if !strings.Contains(verdict, "SKIPPED") || !strings.Contains(verdict, "regenerate") {
		t.Fatalf("verdict should ask for a baseline refresh: %q", verdict)
	}
}

func TestGateIncomparableReports(t *testing.T) {
	other := rep(10)
	other.Suite = "E9"
	if _, err := gate(rep(10), other, 0.30); err == nil {
		t.Fatal("different suites compared")
	}
	full := rep(10)
	full.Quick = false
	if _, err := gate(rep(10), full, 0.30); err == nil {
		t.Fatal("quick vs full compared")
	}
}

func TestGateRejectsEmptyBaseline(t *testing.T) {
	if _, err := gate(benchreport.Report{}, rep(1), 0.30); err == nil {
		t.Fatal("zero baseline accepted")
	}
}
