package main

import (
	"strings"
	"testing"

	"noisyradio/internal/benchreport"
)

func rep(wall float64) benchreport.Report {
	return benchreport.Report{Suite: "all", Quick: true, GoMaxProcs: 4, WallSeconds: wall}
}

func TestGateWithinBudget(t *testing.T) {
	if _, err := gate(rep(10), rep(12.9), 0.30, 0.50); err != nil {
		t.Fatalf("29%% regression rejected at 30%% budget: %v", err)
	}
}

func TestGateOverBudget(t *testing.T) {
	_, err := gate(rep(10), rep(13.1), 0.30, 0.50)
	if err == nil {
		t.Fatal("31% regression accepted at 30% budget")
	}
	if !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestGateImprovementAlwaysPasses(t *testing.T) {
	if _, err := gate(rep(10), rep(3), 0.30, 0.50); err != nil {
		t.Fatalf("improvement rejected: %v", err)
	}
}

func TestGateMachineClassMismatchSkips(t *testing.T) {
	baseline := rep(1)
	baseline.GoMaxProcs = 1
	current := rep(10) // 10x slower but on a different machine class
	verdict, err := gate(baseline, current, 0.30, 0.50)
	if err != nil {
		t.Fatalf("cross-machine comparison failed the gate: %v", err)
	}
	if !strings.Contains(verdict, "SKIPPED") || !strings.Contains(verdict, "regenerate") {
		t.Fatalf("verdict should ask for a baseline refresh: %q", verdict)
	}
}

func TestGateIncomparableReports(t *testing.T) {
	other := rep(10)
	other.Suite = "E9"
	if _, err := gate(rep(10), other, 0.30, 0.50); err == nil {
		t.Fatal("different suites compared")
	}
	full := rep(10)
	full.Quick = false
	if _, err := gate(rep(10), full, 0.30, 0.50); err == nil {
		t.Fatal("quick vs full compared")
	}
}

func TestGateRejectsEmptyBaseline(t *testing.T) {
	if _, err := gate(benchreport.Report{}, rep(1), 0.30, 0.50); err == nil {
		t.Fatal("zero baseline accepted")
	}
}

func microRep(wall float64, micro ...benchreport.Microbench) benchreport.Report {
	r := rep(wall)
	r.Microbench = micro
	return r
}

func TestGateMicrobenchWithinBudget(t *testing.T) {
	baseline := microRep(10, benchreport.Microbench{Name: "stepset/dense", NsPerRound: 1000})
	current := microRep(10, benchreport.Microbench{Name: "stepset/dense", NsPerRound: 1490})
	if _, err := gate(baseline, current, 0.30, 0.50); err != nil {
		t.Fatalf("49%% microbench regression rejected at 50%% budget: %v", err)
	}
}

func TestGateMicrobenchOverBudget(t *testing.T) {
	baseline := microRep(10, benchreport.Microbench{Name: "stepset/dense", NsPerRound: 1000})
	current := microRep(10, benchreport.Microbench{Name: "stepset/dense", NsPerRound: 1510})
	_, err := gate(baseline, current, 0.30, 0.50)
	if err == nil {
		t.Fatal("51% microbench regression accepted at 50% budget")
	}
	if !strings.Contains(err.Error(), "stepset/dense") {
		t.Fatalf("error does not name the regressing row: %v", err)
	}
}

func TestGateMicrobenchNewRowPasses(t *testing.T) {
	baseline := microRep(10)
	current := microRep(10, benchreport.Microbench{Name: "stepset/new", NsPerRound: 9999})
	if _, err := gate(baseline, current, 0.30, 0.50); err != nil {
		t.Fatalf("row missing from baseline failed the gate: %v", err)
	}
}

func TestGateMicrobenchAllocRegression(t *testing.T) {
	baseline := microRep(10, benchreport.Microbench{Name: "stepset/dense", NsPerRound: 1000, AllocsPerRound: 0})
	current := microRep(10, benchreport.Microbench{Name: "stepset/dense", NsPerRound: 1000, AllocsPerRound: 2})
	if _, err := gate(baseline, current, 0.30, 0.50); err == nil {
		t.Fatal("new per-round allocations accepted")
	}
}

func TestGateMicrobenchSkippedOnMachineMismatch(t *testing.T) {
	baseline := microRep(1, benchreport.Microbench{Name: "stepset/dense", NsPerRound: 10})
	baseline.GoMaxProcs = 1
	current := microRep(1, benchreport.Microbench{Name: "stepset/dense", NsPerRound: 10000})
	verdict, err := gate(baseline, current, 0.30, 0.50)
	if err != nil {
		t.Fatalf("cross-machine microbench comparison failed the gate: %v", err)
	}
	if !strings.Contains(verdict, "SKIPPED") {
		t.Fatalf("verdict should be a skip: %q", verdict)
	}
}

func stepBatchRep(scalarNs, batchNs float64) benchreport.Report {
	return microRep(10,
		benchreport.Microbench{Name: stepBatchScalarRow, NsPerRound: scalarNs},
		benchreport.Microbench{Name: stepBatchBatchRow, NsPerRound: batchNs},
	)
}

func TestGateStepBatchAboveFloor(t *testing.T) {
	if _, err := gateStepBatch(stepBatchRep(4500, 2000), 2.0); err != nil {
		t.Fatalf("2.25x speedup rejected at 2x floor: %v", err)
	}
}

func TestGateStepBatchBelowFloor(t *testing.T) {
	_, err := gateStepBatch(stepBatchRep(4500, 2500), 2.0)
	if err == nil {
		t.Fatal("1.8x speedup accepted at 2x floor")
	}
	if !strings.Contains(err.Error(), "floor") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestGateStepBatchMissingRows(t *testing.T) {
	if _, err := gateStepBatch(microRep(10), 2.0); err == nil {
		t.Fatal("report without stepbatch rows passed the speedup gate")
	}
	onlyScalar := microRep(10, benchreport.Microbench{Name: stepBatchScalarRow, NsPerRound: 4500})
	if _, err := gateStepBatch(onlyScalar, 2.0); err == nil {
		t.Fatal("report without the batch row passed the speedup gate")
	}
}

func TestGateStepBatchRejectsNonPositive(t *testing.T) {
	if _, err := gateStepBatch(stepBatchRep(0, 2000), 2.0); err == nil {
		t.Fatal("non-positive scalar ns accepted")
	}
}

func geomSkipRep(v1Ns, v2Ns float64) benchreport.Report {
	return microRep(10,
		benchreport.Microbench{Name: geomSkipV1Row, NsPerRound: v1Ns},
		benchreport.Microbench{Name: geomSkipV2Row, NsPerRound: v2Ns},
	)
}

func TestGateGeomSkipAboveFloor(t *testing.T) {
	if _, err := gateGeomSkip(geomSkipRep(60000, 9000), 5.0); err != nil {
		t.Fatalf("6.7x speedup rejected at 5x floor: %v", err)
	}
}

func TestGateGeomSkipBelowFloor(t *testing.T) {
	_, err := gateGeomSkip(geomSkipRep(60000, 20000), 5.0)
	if err == nil {
		t.Fatal("3x speedup accepted at 5x floor")
	}
	if !strings.Contains(err.Error(), "floor") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestGateGeomSkipMissingRows(t *testing.T) {
	if _, err := gateGeomSkip(microRep(10), 5.0); err == nil {
		t.Fatal("report without faultdraw rows passed the speedup gate")
	}
	onlyV1 := microRep(10, benchreport.Microbench{Name: geomSkipV1Row, NsPerRound: 60000})
	if _, err := gateGeomSkip(onlyV1, 5.0); err == nil {
		t.Fatal("report without the v2 row passed the speedup gate")
	}
}

func TestGateGeomSkipRejectsNonPositive(t *testing.T) {
	if _, err := gateGeomSkip(geomSkipRep(60000, 0), 5.0); err == nil {
		t.Fatal("non-positive v2 ns accepted")
	}
}

func burstDrawRep(v2Ns, v3Ns float64) benchreport.Report {
	return microRep(10,
		benchreport.Microbench{Name: burstDrawV2Row, NsPerRound: v2Ns},
		benchreport.Microbench{Name: burstDrawV3Row, NsPerRound: v3Ns},
	)
}

func TestGateBurstDrawWithinCeiling(t *testing.T) {
	if _, err := gateBurstDraw(burstDrawRep(9000, 15000), 2.0); err != nil {
		t.Fatalf("1.7x ratio rejected at 2x ceiling: %v", err)
	}
}

func TestGateBurstDrawOverCeiling(t *testing.T) {
	_, err := gateBurstDraw(burstDrawRep(9000, 27000), 2.0)
	if err == nil {
		t.Fatal("3x ratio accepted at 2x ceiling")
	}
	if !strings.Contains(err.Error(), "ceiling") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestGateBurstDrawMissingRows(t *testing.T) {
	if _, err := gateBurstDraw(microRep(10), 2.0); err == nil {
		t.Fatal("report without faultdraw rows passed the burstdraw gate")
	}
	onlyV2 := microRep(10, benchreport.Microbench{Name: burstDrawV2Row, NsPerRound: 9000})
	if _, err := gateBurstDraw(onlyV2, 2.0); err == nil {
		t.Fatal("report without the v3 row passed the burstdraw gate")
	}
}

func TestGateBurstDrawRejectsNonPositive(t *testing.T) {
	if _, err := gateBurstDraw(burstDrawRep(0, 15000), 2.0); err == nil {
		t.Fatal("non-positive v2 ns accepted")
	}
}

func cacheHitRep(coldNs, hitNs float64) benchreport.Report {
	return microRep(10,
		benchreport.Microbench{Name: cacheColdRow, NsPerRound: coldNs},
		benchreport.Microbench{Name: cacheHitRow, NsPerRound: hitNs},
	)
}

func TestGateCacheHitAboveFloor(t *testing.T) {
	if _, err := gateCacheHit(cacheHitRep(300e6, 1e6), 100.0); err != nil {
		t.Fatalf("300x speedup rejected at 100x floor: %v", err)
	}
}

func TestGateCacheHitBelowFloor(t *testing.T) {
	_, err := gateCacheHit(cacheHitRep(300e6, 10e6), 100.0)
	if err == nil {
		t.Fatal("30x speedup accepted at 100x floor")
	}
	if !strings.Contains(err.Error(), "floor") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestGateCacheHitMissingRows(t *testing.T) {
	if _, err := gateCacheHit(microRep(10), 100.0); err == nil {
		t.Fatal("report without servecache rows passed the cachehit gate")
	}
	onlyCold := microRep(10, benchreport.Microbench{Name: cacheColdRow, NsPerRound: 300e6})
	if _, err := gateCacheHit(onlyCold, 100.0); err == nil {
		t.Fatal("report without the hit row passed the cachehit gate")
	}
}

func TestGateCacheHitRejectsNonPositive(t *testing.T) {
	if _, err := gateCacheHit(cacheHitRep(300e6, 0), 100.0); err == nil {
		t.Fatal("non-positive hit ns accepted")
	}
}
