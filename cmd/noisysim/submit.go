package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"noisyradio/internal/benchreport"
	"noisyradio/internal/broadcast"
	"noisyradio/internal/experiments"
	"noisyradio/internal/serve"
)

// submitSchedule runs a -schedule job on a remote sweep service instead
// of the local sweep pool: it builds the canonical job spec from the same
// flags a local run uses, validates it client-side against the registry
// (unknown schedules and malformed workloads fail before any network
// traffic), streams the service's snapshot lines as they arrive and
// renders the terminal result in the local -schedule output format.
func submitSchedule(out *os.File, baseURL, name, topology string, n, k int, p float64, faultName string, drawName string, trials int, seed uint64, burstLen, burstBadP, jamQ float64, jamRadius int, jamBall bool) error {
	sched, err := broadcast.LookupSchedule(name)
	if err != nil {
		names := strings.Join(broadcast.ScheduleNames(), ", ")
		return fmt.Errorf("%w (use -schedule list; known: %s)", err, names)
	}
	// The same workload resolution the server will perform — run it here
	// first so bad parameters are a usage error, not a round trip.
	top, params, err := experiments.ScheduleWorkload(sched, topology, n, k, seed)
	if err != nil {
		return err
	}
	if trials <= 0 {
		trials = 20
	}
	spec := benchreport.JobSpec{
		Schedule: name,
		Topology: topology,
		N:        n,
		Fault:    faultName,
		P:        p,
		Draw:     drawName,
		Seed:     seed,
		Trials:   trials,
	}
	if sched.Kind == broadcast.MultiMessage {
		spec.K = k
	}
	if faultName == "none" {
		spec.P = 0
	}
	switch drawName {
	case "v3":
		spec.BurstLen, spec.BurstBadP = burstLen, burstBadP
	case "v4":
		spec.JamQ, spec.JamRadius, spec.JamBall = jamQ, jamRadius, jamBall
	}

	fmt.Fprintf(out, "schedule: %s (%s, %s)\n", sched.Name, sched.Kind, sched.Ref)
	desc := "synthesised topology"
	if pt := sched.PlanTopology(top, params); pt.G != nil {
		desc = fmt.Sprintf("%s, %d nodes", pt.Name, pt.G.N())
	}
	fmt.Fprintf(out, "workload: %s, noise %s p=%.2f, trials %d, seed %d\n", desc, faultName, spec.P, trials, seed)
	fmt.Fprintf(out, "submit: %s job %s\n", baseURL, spec.PlanKey())

	start := time.Now()
	res, err := serve.Submit(context.Background(), baseURL, spec, func(line serve.Line) {
		if line.Stats == nil {
			return
		}
		mean := "-"
		if line.Stats.Mean != nil {
			mean = fmt.Sprintf("%.1f", *line.Stats.Mean)
		}
		fmt.Fprintf(out, "snapshot %d/%d: %d trials folded, mean %s\n",
			line.ShardsDone, line.Shards, line.Stats.N+line.Stats.Dropped, mean)
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(out, "cache: %s (%d shards)\n", res.Cache, res.Shards)
	st := res.Stats
	fmt.Fprintf(out, "success: %d/%d trials\n", st.N, trials)
	if st.N > 0 && st.Mean != nil && st.CI95 != nil {
		fmt.Fprintf(out, "rounds: mean %.1f ±%.1f (95%% CI)\n", *st.Mean, *st.CI95)
		if spec.K > 0 {
			fmt.Fprintf(out, "throughput: %.4f messages/round (k=%d)\n", float64(spec.K)/(*st.Mean), spec.K)
		}
	}
	fmt.Fprintf(out, "(%d trials in %.2fs)\n", trials, elapsed.Seconds())
	return nil
}
