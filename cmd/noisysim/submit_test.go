package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"noisyradio/internal/serve"
)

// TestSubmitSchedule: -submit runs a -schedule job against a sweep
// service and renders the streamed result in the local output format; a
// repeat submission is served from the cache with identical statistics.
func TestSubmitSchedule(t *testing.T) {
	ts := httptest.NewServer(serve.NewServer(serve.Config{}))
	defer ts.Close()

	args := []string{"-schedule", "decay", "-submit", ts.URL, "-n", "24", "-p", "0.3", "-fault", "receiver", "-trials", "40", "-seed", "3"}
	out, err := capture(t, args...)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"schedule: decay", "submit: " + ts.URL + " job pk1-", "cache: miss", "success: ", "rounds: mean "} {
		if !strings.Contains(out, want) {
			t.Fatalf("submit output missing %q:\n%s", want, out)
		}
	}

	again, err := capture(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(again, "cache: hit") {
		t.Fatalf("second submission not a cache hit:\n%s", again)
	}
	// Everything but the cache disposition and the wall clock is replayed
	// bytes: the statistics lines must match the first run exactly.
	statLines := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "success:") || strings.HasPrefix(line, "rounds:") || strings.HasPrefix(line, "snapshot ") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if statLines(out) != statLines(again) {
		t.Fatalf("cached replay changed the statistics:\n%s\nvs\n%s", statLines(out), statLines(again))
	}

	// The local execution path agrees with the service on the summary
	// lines (same fold, same formatting).
	local, err := capture(t, "-schedule", "decay", "-n", "24", "-p", "0.3", "-fault", "receiver", "-trials", "40", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	pick := func(s, prefix string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, prefix) {
				return line
			}
		}
		return ""
	}
	for _, prefix := range []string{"success:", "rounds:"} {
		if pick(out, prefix) != pick(local, prefix) {
			t.Fatalf("service and local disagree on %q:\n%s\nvs\n%s", prefix, pick(out, prefix), pick(local, prefix))
		}
	}
}

// TestSubmitMultiMessageThroughput: k rides into the spec for
// multi-message schedules and the throughput line renders.
func TestSubmitMultiMessageThroughput(t *testing.T) {
	ts := httptest.NewServer(serve.NewServer(serve.Config{}))
	defer ts.Close()
	out, err := capture(t, "-schedule", "star-coding", "-submit", ts.URL, "-n", "16", "-k", "4", "-p", "0.45", "-fault", "receiver", "-trials", "20", "-seed", "2")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "throughput: ") || !strings.Contains(out, "(k=4)") {
		t.Fatalf("missing throughput line:\n%s", out)
	}
}

// TestSubmitErrorPaths: the documented failure modes are usage errors —
// unknown schedules and malformed workloads fail client-side before any
// network traffic, an unreachable server fails with a transport error.
func TestSubmitErrorPaths(t *testing.T) {
	ts := httptest.NewServer(serve.NewServer(serve.Config{}))
	serverDownURL := ts.URL
	ts.Close() // nothing listens here any more

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown schedule", []string{"-schedule", "bogus", "-submit", "http://127.0.0.1:1"}, "unknown schedule"},
		{"bad workload", []string{"-schedule", "decay", "-submit", "http://127.0.0.1:1", "-topology", "grid", "-n", "12"}, "grid"},
		{"server down", []string{"-schedule", "decay", "-submit", serverDownURL, "-n", "24", "-trials", "5"}, "submitting job"},
		{"submit without schedule", []string{"-submit", "http://127.0.0.1:1"}, "-submit requires -schedule"},
	}
	for _, tc := range cases {
		_, err := capture(t, tc.args...)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}
