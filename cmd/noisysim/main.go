// Command noisysim runs the reproduction experiments for "Broadcasting in
// Noisy Radio Networks" (PODC 2017) and prints their tables.
//
// Usage:
//
//	noisysim -list                 # list experiments
//	noisysim -exp E9               # run one experiment
//	noisysim -exp all              # run the whole suite (EXPERIMENTS.md data)
//	noisysim -exp E9 -quick        # reduced sweep for a fast look
//	noisysim -exp E13 -trials 12 -seed 7 -workers 8
//	noisysim -exp E9 -engine dense # force the bit-parallel radio engine
//	noisysim -exp E3 -trialbatch 8 # run 8 Monte-Carlo trials per lockstep batch
//	noisysim -exp all -quick -benchjson BENCH_sweep.json
//
// Every experiment schedules all of its table rows on one shared worker
// pool (the sim.Sweep row-parallel scheduler): trials from every row
// interleave, so rows with tiny trial counts cannot serialise the table.
// Two knobs tune the scheduler, neither of which changes any output:
//
//   - -workers sets the pool size (0 = GOMAXPROCS);
//   - -rowworkers bounds how many rows are in flight at once (0 = all),
//     trading peak scratch memory against row-level parallelism.
//
// Tables are bit-identical at every -workers/-rowworkers setting and
// across engines; a regression test (internal/experiments golden test) and
// a CI determinism job enforce this.
//
// The -engine flag selects the radio execution engine (auto | sparse |
// dense | implicit). Results are bit-identical across engines — auto picks
// per graph by average degree and storage mode, dense forces word-parallel
// channel resolution, sparse forces CSR neighbour walking, implicit
// answers neighbourhood queries from the topology's closed form without
// any stored adjacency. Purely a performance knob.
//
// The -trialbatch flag sets the lockstep trial-batch plan: "auto" (the
// default) plans the width W per row from its trial count, its resolved
// radio engine and the recorded stepbatch microbench trajectory; 0 (or 1)
// forces scalar execution; an explicit W forces that width. Batch-capable
// experiment rows then run W consecutive Monte-Carlo trials through one
// trial-batched radio network (each listener's adjacency row visited once
// per round for all W trials) instead of W scalar executions. Like the
// other knobs it never changes any output — tables are bit-identical at
// every setting, and the chosen plans are recorded in the -benchjson
// report.
//
// The -drawcontract flag selects the fault-draw contract version (v1 |
// v2 | v3 | v4). v1 — the default and today's behaviour — draws one
// Bernoulli coin per fault site in canonical order; v2 draws geometric
// skip distances over the same site order, visiting only the faulty sites
// (a large speedup at small p on large fault-site counts); v3 is the
// Gilbert–Elliott burst contract — a two-state good/bad process walks the
// site order, sites in a bad phase fault with probability -burstbadp, and
// the burst shape (-burstlen mean bad-phase length) is chosen so the
// stationary per-site fault rate is still exactly -p; v4 is the region
// jamming contract — each round, with probability -jamq, a drawn center
// and its surrounding region (a contiguous id window of radius -jamradius,
// or the center's graph neighbourhood with -jamball) fault outright, while
// sites outside the jam keep drawing independent v1 coins. Unlike -engine
// and -trialbatch this is NOT a pure performance knob: each version is its
// own deterministic universe. Within a version, outputs are bit-identical
// across engines, workers and batch widths; across versions the fault
// draws differ, so each contract's runs are compared against its own
// committed goldens (the CI determinism job checks all of them).
//
// The -schedule flag exposes the broadcast Schedule registry directly:
//
//	noisysim -schedule list            # list every registered schedule
//	noisysim -schedule decay -n 256 -p 0.3 -fault receiver -trials 50
//	noisysim -schedule star-coding -n 64 -k 16 -trials 100 -trialbatch auto
//
// A schedule run executes -trials Monte-Carlo trials of one registry
// entry on a size--n workload (a path for topology-taking schedules, n
// leaves for the star, a WCT instance for the WCT schedules, a length-n
// pipeline for the path schedules) and prints the round statistics plus
// the execution plan the sweep chose.
//
// The -benchjson flag writes a machine-readable performance report (suite
// wall clock, per-experiment seconds, rows/sec, allocations per trial) to
// the given path after the run. CI runs the quick suite with -benchjson on
// every push and fails if wall clock regresses more than the gate
// threshold against the checked-in baseline (see cmd/benchgate).
//
// Demo mode traces one small broadcast round by round:
//
//	noisysim -demo decay -n 24 -p 0.3 -fault receiver -seed 3
//	noisysim -demo robust-fastbc -n 40 -fault sender -p 0.5
//
// The -topology flag shapes the workload graph for demo and
// topology-taking schedule runs (path | complete | star | cycle | grid |
// hypercube; default path). At n >= 4096 the workload is built in the
// CSR-less implicit storage mode — no adjacency is materialized, so runs
// scale to node counts where a bit matrix or CSR cannot exist:
//
//	noisysim -demo decay -topology complete -n 100000 -fault sender -p 0.1
//	noisysim -schedule decay -topology complete -n 100000 -trials 3 -fault sender -p 0.1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"noisyradio/internal/benchreport"
	"noisyradio/internal/broadcast"
	"noisyradio/internal/experiments"
	"noisyradio/internal/radio"
	"noisyradio/internal/rng"
	"noisyradio/internal/serve"
	"noisyradio/internal/sim"
	"noisyradio/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "noisysim:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("noisysim", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "", "experiment id (E1..E19, F1, F2, A1..A3) or 'all'")
		list       = fs.Bool("list", false, "list available experiments")
		schedName  = fs.String("schedule", "", "run one broadcast schedule from the registry by name, or 'list'")
		submit     = fs.String("submit", "", "submit the -schedule job to a sweep service at this base URL (e.g. http://localhost:8091) instead of executing locally")
		trials     = fs.Int("trials", 0, "Monte-Carlo trials per row (0 = experiment/schedule default)")
		seed       = fs.Uint64("seed", 1, "base random seed")
		workers    = fs.Int("workers", 0, "shared worker pool size for each table (0 = GOMAXPROCS)")
		rowWkrs    = fs.Int("rowworkers", 0, "max table rows in flight at once (0 = all); memory/scheduling knob, output identical")
		quick      = fs.Bool("quick", false, "reduced sweeps and trial counts")
		engine     = fs.String("engine", "auto", "radio execution engine: auto | sparse | dense | implicit (results identical, speed differs)")
		trialBatch = fs.String("trialbatch", "auto", "lockstep trial-batch plan: auto | 0 (scalar) | W; output identical at every setting")
		drawC      = fs.String("drawcontract", "v1", "fault-draw contract version: v1 (per-site Bernoulli) | v2 (geometric skip) | v3 (Gilbert-Elliott bursts) | v4 (region jamming); versions are separate deterministic universes")
		burstLen   = fs.Float64("burstlen", 0, "v3: mean bad-phase length in sites (0 = default 8)")
		burstBadP  = fs.Float64("burstbadp", 0, "v3: fault probability inside a bad phase (0 = default 0.5; must exceed -p)")
		jamQ       = fs.Float64("jamq", 0, "v4: per-round jam probability (0 = default 0.05)")
		jamRadius  = fs.Int("jamradius", 0, "v4: jam region radius around the drawn center (0 = default 8)")
		jamBall    = fs.Bool("jamball", false, "v4: jam the center's graph neighbourhood instead of a contiguous id window")
		asJSON     = fs.Bool("json", false, "emit experiment tables as a JSON array")
		benchOut   = fs.String("benchjson", "", "write a machine-readable performance report (wall clock, rows/sec, allocs/trial, chosen plans) to this path")
		demo       = fs.String("demo", "", "trace one run of an algorithm: decay | fastbc | robust-fastbc")
		topology   = fs.String("topology", "path", "demo/schedule: workload graph: path | complete | star | cycle | grid | hypercube (n >= 4096 builds the CSR-less implicit form)")
		demoN      = fs.Int("n", 24, "demo/schedule: workload size (node count, WCT target size)")
		demoK      = fs.Int("k", 8, "schedule: message count for multi-message schedules")
		demoP      = fs.Float64("p", 0.3, "demo/schedule: fault probability")
		faultMd    = fs.String("fault", "receiver", "demo/schedule: fault model: none | sender | receiver")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := radio.ParseEngine(*engine)
	if err != nil {
		return err
	}
	tb, err := parseTrialBatch(*trialBatch)
	if err != nil {
		return err
	}
	dc, err := radio.ParseDrawContract(*drawC)
	if err != nil {
		return err
	}
	// The base radio configuration every noisy network of this invocation
	// inherits: engine, contract version and the contract's parameters
	// (zero fields select the radio defaults; non-selected contracts ignore
	// theirs).
	base := radio.Config{
		Engine: eng,
		Draw:   dc,
		Burst:  radio.BurstParams{Len: *burstLen, BadP: *burstBadP},
		Jam:    radio.JamParams{Q: *jamQ, Radius: *jamRadius, Ball: *jamBall},
	}
	if *trials < 0 {
		return fmt.Errorf("-trials must be >= 0, got %d", *trials)
	}
	if *demo != "" {
		return runDemo(out, *demo, *topology, *demoN, *demoP, *faultMd, *seed, base)
	}
	if *schedName != "" {
		if *schedName == "list" {
			for _, s := range broadcast.Schedules() {
				fmt.Fprintf(out, "%-26s %-15s %s\n", s.Name, s.Kind, s.Ref)
			}
			return nil
		}
		if *submit != "" {
			return submitSchedule(out, *submit, *schedName, *topology, *demoN, *demoK, *demoP, *faultMd, *drawC, *trials, *seed, *burstLen, *burstBadP, *jamQ, *jamRadius, *jamBall)
		}
		return runSchedule(out, *schedName, *topology, *demoN, *demoK, *demoP, *faultMd, *trials, *seed, *workers, tb, base)
	}
	if *submit != "" {
		return fmt.Errorf("-submit requires -schedule (the sweep service runs registry schedules)")
	}
	if *list {
		for _, e := range experiments.Registry() {
			fmt.Fprintf(out, "%-4s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Extras() {
			fmt.Fprintf(out, "%-4s %s (extra; not part of -exp all)\n", e.ID, e.Title)
		}
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (or -list, -schedule)")
	}
	cfg := experiments.Config{
		Trials:     *trials,
		Seed:       *seed,
		Workers:    *workers,
		RowWorkers: *rowWkrs,
		Quick:      *quick,
		Engine:     eng,
		TrialBatch: tb,
		Draw:       dc,
		Burst:      base.Burst,
		Jam:        base.Jam,
	}
	var entries []experiments.Entry
	if strings.EqualFold(*exp, "all") {
		entries = experiments.Registry()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			entries = append(entries, e)
		}
	}

	bench := benchreport.Report{
		Suite:        *exp,
		Quick:        *quick,
		Engine:       eng.String(),
		DrawContract: dc.String(),
		Seed:         *seed,
		Workers:      *workers,
		RowWorkers:   *rowWkrs,
		TrialBatch:   tb,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
	}
	var memBefore runtime.MemStats
	var benchFile *os.File
	if *benchOut != "" {
		// Open the report file before the suite runs: an unwritable path
		// must fail fast, not after minutes of Monte-Carlo work.
		f, err := os.Create(*benchOut)
		if err != nil {
			return fmt.Errorf("benchjson: %w", err)
		}
		benchFile = f
		defer benchFile.Close()
		runtime.ReadMemStats(&memBefore)
	}
	trialsBefore := sim.TotalTrials()
	suiteStart := time.Now()

	tables := make([]experiments.Table, 0, len(entries))
	for _, e := range entries {
		start := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		elapsed := time.Since(start).Seconds()
		bench.Experiments = append(bench.Experiments, benchreport.ExpSeconds{ID: e.ID, Seconds: elapsed, Rows: len(tbl.Rows)})
		bench.Rows += len(tbl.Rows)
		tables = append(tables, tbl)
		if !*asJSON {
			fmt.Fprint(out, tbl.String())
			fmt.Fprintf(out, "(%s in %.1fs)\n\n", e.ID, elapsed)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			return err
		}
	}

	if benchFile != nil {
		bench.WallSeconds = time.Since(suiteStart).Seconds()
		bench.Tables = len(tables)
		if bench.WallSeconds > 0 {
			bench.RowsPerSec = float64(bench.Rows) / bench.WallSeconds
		}
		bench.Trials = sim.TotalTrials() - trialsBefore
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		if bench.Trials > 0 {
			bench.AllocsPerTrial = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(bench.Trials)
			bench.BytesPerTrial = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(bench.Trials)
		}
		// Engine microbenchmarks ride along in the report (~0.3s): suite
		// wall clock mixes scheduling, coding and statistics, so per-round
		// engine regressions need their own gated numbers. Run after the
		// wall-clock and allocation windows close so their setup doesn't
		// pollute the suite's numbers. The sweep-service cache microbench
		// (cold vs cached submission of one representative job) rides along
		// the same way for the benchgate -min-cachehit-speedup floor.
		bench.Microbench = append(radio.EngineMicrobench(), serve.CacheMicrobench()...)
		// The execution plans the sweeps chose (engine, trial-batch width W
		// per schedule row) ride along so the `-trialbatch auto` decision
		// trail is inspectable in the artifact.
		bench.Plans = sim.PlanLog()
		if err := bench.Write(benchFile); err != nil {
			return fmt.Errorf("benchjson: %w", err)
		}
	}
	return nil
}

// parseTrialBatch converts the -trialbatch flag: "auto" plans per row,
// "0"/"1" force scalar, an explicit W forces that width.
func parseTrialBatch(s string) (int, error) {
	if s == "auto" {
		return sim.TrialBatchAuto, nil
	}
	w, err := strconv.Atoi(s)
	if err != nil || w < 0 || w > sim.MaxTrialBatch {
		return 0, fmt.Errorf("invalid -trialbatch %q (auto, 0 or 1..%d)", s, sim.MaxTrialBatch)
	}
	return w, nil
}

// parseFault converts the -fault flag plus probability into a radio
// config, on top of the invocation's base (engine, draw contract and its
// parameters).
func parseFault(faultName string, p float64, base radio.Config) (radio.Config, error) {
	cfg := base
	fault, err := radio.ParseFaultModel(faultName)
	if err != nil {
		return cfg, err
	}
	cfg.Fault = fault
	if fault != radio.Faultless {
		cfg.P = p
	}
	return cfg, nil
}

// runSchedule runs -trials Monte-Carlo trials of one registry schedule on
// the sweep scheduler and prints the round statistics and the execution
// plan the sweep chose.
func runSchedule(out *os.File, name, topology string, n, k int, p float64, faultName string, trials int, seed uint64, workers, tb int, base radio.Config) error {
	sched, err := broadcast.LookupSchedule(name)
	if err != nil {
		names := strings.Join(broadcast.ScheduleNames(), ", ")
		return fmt.Errorf("%w (use -schedule list; known: %s)", err, names)
	}
	cfg, err := parseFault(faultName, p, base)
	if err != nil {
		return err
	}
	top, params, err := experiments.ScheduleWorkload(sched, topology, n, k, seed)
	if err != nil {
		return err
	}
	if trials <= 0 {
		trials = 20
	}

	sw := sim.NewSweep(sim.SweepConfig{Workers: workers, TrialBatch: tb})
	// Snapshot the process plan log so only this run's plans are printed
	// (earlier runs in the same process may have recorded their own).
	before := map[benchreport.Plan]int{}
	for _, plan := range sim.PlanLog() {
		counted := plan
		counted.Count = 0
		before[counted] = plan.Count
	}
	row := sw.AddSchedule(sched, top, cfg, params, trials, seed, func(o broadcast.Outcome) (float64, error) {
		if !o.Success {
			return math.NaN(), nil // failed trials excluded from the mean, counted below
		}
		return float64(o.Rounds), nil
	})
	start := time.Now()
	if err := sw.Run(); err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(out, "schedule: %s (%s, %s)\n", sched.Name, sched.Kind, sched.Ref)
	desc := "synthesised topology"
	if pt := sched.PlanTopology(top, params); pt.G != nil {
		desc = fmt.Sprintf("%s, %d nodes", pt.Name, pt.G.N())
	}
	fmt.Fprintf(out, "workload: %s, noise %s p=%.2f, trials %d, seed %d\n", desc, cfg.Fault, cfg.P, trials, seed)
	for _, plan := range sim.PlanLog() {
		key := plan
		key.Count = 0
		if plan.Count > before[key] {
			fmt.Fprintf(out, "plan: engine %s, trial-batch width %d (%s)\n", plan.Engine, plan.Width, plan.Reason)
		}
	}
	acc := row.Acc()
	succeeded := acc.N()
	fmt.Fprintf(out, "success: %d/%d trials\n", succeeded, trials)
	if succeeded > 0 {
		fmt.Fprintf(out, "rounds: mean %.1f ±%.1f (95%% CI)\n", row.Mean(), row.CI95())
		if params.K > 0 {
			fmt.Fprintf(out, "throughput: %.4f messages/round (k=%d)\n", float64(params.K)/row.Mean(), params.K)
		}
	}
	fmt.Fprintf(out, "(%d trials in %.2fs)\n", trials, elapsed.Seconds())
	return nil
}

// runDemo traces one single-message broadcast on the -topology workload
// and renders the round-by-round timeline.
func runDemo(out *os.File, algo, topology string, n int, p float64, faultName string, seed uint64, base radio.Config) error {
	if n < 2 {
		return fmt.Errorf("demo needs -n >= 2, got %d", n)
	}
	cfg, err := parseFault(faultName, p, base)
	if err != nil {
		return err
	}
	top, err := experiments.WorkloadTopology(topology, n)
	if err != nil {
		return err
	}
	if !top.G.HasCSR() && algo != "decay" {
		return fmt.Errorf("%s builds a BFS tree and needs materialized adjacency, but -n %d >= %d builds the implicit form; use a smaller -n or -demo decay", algo, n, experiments.LargeNImplicit)
	}
	rec := trace.NewRecorder(top.G.N())
	opts := broadcast.Options{Trace: rec.Observe}
	r := rng.New(seed)

	var res broadcast.Result
	switch algo {
	case "decay":
		res, err = broadcast.Decay(top, cfg, r, opts)
	case "fastbc":
		res, err = broadcast.FASTBC(top, cfg, r, opts)
	case "robust-fastbc":
		res, err = broadcast.RobustFASTBC(top, cfg, r, opts, broadcast.RobustParams{})
	default:
		return fmt.Errorf("unknown algorithm %q (decay|fastbc|robust-fastbc)", algo)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s on %s, %s p=%.2f, seed %d\n", algo, top.Name, cfg.Fault, cfg.P, seed)
	fmt.Fprintf(out, "result: success=%v rounds=%d informed=%d\n", res.Success, res.Rounds, res.Informed)
	fmt.Fprintf(out, "channel: %+v\n", res.Channel)
	fmt.Fprintf(out, "%s\n\n", rec.Summary())
	fmt.Fprint(out, rec.Timeline(40))
	return nil
}
