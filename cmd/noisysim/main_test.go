package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"noisyradio/internal/benchreport"
)

// capture runs the CLI entry with args and returns its stdout.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E13", "E19", "F1", "A2"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, "-exp", "F2", "-quick", "-seed", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== F2: WCT construction ==") {
		t.Fatalf("missing table header:\n%s", out)
	}
	if !strings.Contains(out, "(F2 in ") {
		t.Fatalf("missing timing footer:\n%s", out)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	out, err := capture(t, "-exp", "F1, F2", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== F1") || !strings.Contains(out, "== F2") {
		t.Fatalf("comma-separated ids not both run:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := capture(t, "-exp", "E99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestMissingExpFlag(t *testing.T) {
	if _, err := capture(t); err == nil {
		t.Fatal("no arguments accepted")
	}
}

func TestJSONOutput(t *testing.T) {
	out, err := capture(t, "-exp", "F1,F2", "-quick", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID      string     `json:"id"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &tables); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(tables) != 2 || tables[0].ID != "F1" || tables[1].ID != "F2" {
		t.Fatalf("tables = %+v", tables)
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 || len(tbl.Columns) == 0 {
			t.Fatalf("empty table %s", tbl.ID)
		}
	}
}

// The engine selector must not change any output byte: the two engines
// draw randomness in the same canonical order.
func TestEngineFlagOutputsIdentical(t *testing.T) {
	sparse, err := capture(t, "-exp", "E9", "-quick", "-seed", "3", "-json", "-engine", "sparse")
	if err != nil {
		t.Fatal(err)
	}
	dense, err := capture(t, "-exp", "E9", "-quick", "-seed", "3", "-json", "-engine", "dense")
	if err != nil {
		t.Fatal(err)
	}
	if sparse != dense {
		t.Fatalf("engine changed experiment output\nsparse:\n%s\ndense:\n%s", sparse, dense)
	}
}

func TestEngineFlagValidation(t *testing.T) {
	if _, err := capture(t, "-exp", "F1", "-quick", "-engine", "turbo"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestDemoEngineFlag(t *testing.T) {
	out, err := capture(t, "-demo", "decay", "-n", "12", "-fault", "receiver", "-seed", "4", "-engine", "dense")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "success=true") {
		t.Fatalf("dense demo did not succeed:\n%s", out)
	}
}

func TestDemoDecay(t *testing.T) {
	out, err := capture(t, "-demo", "decay", "-n", "12", "-p", "0.2", "-fault", "receiver", "-seed", "4")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"decay on path(n=12)", "success=true", "round |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("demo output missing %q:\n%s", want, out)
		}
	}
}

func TestDemoAllAlgorithmsAndModels(t *testing.T) {
	for _, algo := range []string{"decay", "fastbc", "robust-fastbc"} {
		for _, fault := range []string{"none", "sender", "receiver"} {
			out, err := capture(t, "-demo", algo, "-n", "10", "-fault", fault, "-seed", "5")
			if err != nil {
				t.Fatalf("%s/%s: %v", algo, fault, err)
			}
			if !strings.Contains(out, "success=true") {
				t.Fatalf("%s/%s did not succeed:\n%s", algo, fault, out)
			}
		}
	}
}

func TestDemoValidation(t *testing.T) {
	if _, err := capture(t, "-demo", "bogus"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := capture(t, "-demo", "decay", "-fault", "bogus"); err == nil {
		t.Fatal("unknown fault model accepted")
	}
	if _, err := capture(t, "-demo", "decay", "-n", "1"); err == nil {
		t.Fatal("n=1 accepted")
	}
}

// TestTopologyFlag: every -topology choice runs the demo end to end and
// names the workload in the header.
func TestTopologyFlag(t *testing.T) {
	for _, tt := range []struct {
		topology string
		n        string
		want     string
	}{
		{"path", "12", "path(n=12)"},
		{"complete", "12", "complete(n=12)"},
		{"star", "12", "star(leaves=11)"},
		{"cycle", "12", "cycle(n=12)"},
		{"grid", "16", "grid(4x4)"},
		{"hypercube", "16", "hypercube(dim=4)"},
	} {
		out, err := capture(t, "-demo", "decay", "-topology", tt.topology, "-n", tt.n, "-fault", "none", "-seed", "2")
		if err != nil {
			t.Fatalf("-topology %s: %v", tt.topology, err)
		}
		if !strings.Contains(out, tt.want) || !strings.Contains(out, "success=true") {
			t.Fatalf("-topology %s output missing %q or success:\n%s", tt.topology, tt.want, out)
		}
	}
}

// TestTopologySizeValidation: CLI-derived sizes that would panic inside
// the graph generators must surface as usage errors instead.
func TestTopologySizeValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-demo", "decay", "-topology", "bogus", "-n", "12"},
		{"-demo", "decay", "-topology", "cycle", "-n", "2"},
		{"-demo", "decay", "-topology", "grid", "-n", "12"},
		{"-demo", "decay", "-topology", "hypercube", "-n", "12"},
		{"-demo", "decay", "-topology", "complete", "-n", "0"},
		{"-demo", "decay", "-topology", "star", "-n", "-3"},
		{"-schedule", "decay", "-topology", "grid", "-n", "12"},
		{"-schedule", "decay", "-topology", "bogus", "-n", "12"},
		{"-exp", "F1", "-quick", "-trials", "-5"},
	} {
		if _, err := capture(t, args...); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}

// TestDemoLargeNImplicit is the large-n demo row: at n >= 4096 the
// workload builds without materialized adjacency and the broadcast still
// completes. 2^17 complete-graph nodes would need a 2 GB bit matrix —
// possible only because nothing is materialized.
func TestDemoLargeNImplicit(t *testing.T) {
	out, err := capture(t, "-demo", "decay", "-topology", "complete", "-n", "131072", "-fault", "sender", "-p", "0.1", "-seed", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "complete(n=131072)") || !strings.Contains(out, "success=true") {
		t.Fatalf("large-n implicit demo failed:\n%s", out)
	}
	// Algorithms that need materialized adjacency reject the implicit
	// workload as a usage error instead of panicking.
	if _, err := capture(t, "-demo", "fastbc", "-topology", "complete", "-n", "8192"); err == nil {
		t.Fatal("fastbc on an implicit workload accepted")
	}
	if _, err := capture(t, "-schedule", "fastbc", "-topology", "complete", "-n", "8192", "-trials", "2"); err == nil {
		t.Fatal("fastbc schedule on an implicit workload accepted")
	}
}

// TestScheduleLargeNImplicit: a schedule sweep on an implicit workload
// resolves the implicit engine and reports its scalar plan.
func TestScheduleLargeNImplicit(t *testing.T) {
	out, err := capture(t, "-schedule", "decay", "-topology", "complete", "-n", "100000", "-trials", "3", "-fault", "sender", "-p", "0.1", "-seed", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"complete(n=100000)", "plan: engine implicit", "success: 3/3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("large-n schedule output missing %q:\n%s", want, out)
		}
	}
}

// The scheduling knobs must not change any output byte: -workers sizes the
// shared pool and -rowworkers bounds row admission, nothing else.
func TestRowWorkersFlagOutputsIdentical(t *testing.T) {
	base, err := capture(t, "-exp", "E3,F1", "-quick", "-seed", "3", "-json")
	if err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-workers", "1", "-rowworkers", "1"},
		{"-workers", "8", "-rowworkers", "2"},
		{"-workers", "3", "-rowworkers", "5"},
	} {
		got, err := capture(t, append([]string{"-exp", "E3,F1", "-quick", "-seed", "3", "-json"}, args...)...)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if got != base {
			t.Fatalf("%v changed experiment output", args)
		}
	}
}

func TestBenchJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	if _, err := capture(t, "-exp", "F1,F2", "-quick", "-seed", "1", "-benchjson", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchreport.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid bench report: %v\n%s", err, data)
	}
	if rep.Suite != "F1,F2" || !rep.Quick || rep.Tables != 2 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if rep.Rows == 0 || rep.WallSeconds <= 0 || rep.RowsPerSec <= 0 {
		t.Fatalf("report metrics missing: %+v", rep)
	}
	if len(rep.Experiments) != 2 || rep.Experiments[0].ID != "F1" {
		t.Fatalf("per-experiment timings wrong: %+v", rep.Experiments)
	}
}

func TestBenchJSONCountsTrials(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if _, err := capture(t, "-exp", "E4", "-quick", "-seed", "1", "-benchjson", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchreport.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Trials <= 0 {
		t.Fatalf("trial count not recorded: %+v", rep)
	}
	if rep.AllocsPerTrial <= 0 {
		t.Fatalf("allocs/trial not recorded: %+v", rep)
	}
}

func TestBenchJSONBadPath(t *testing.T) {
	if _, err := capture(t, "-exp", "F1", "-quick", "-benchjson", filepath.Join(t.TempDir(), "missing", "dir", "b.json")); err == nil {
		t.Fatal("unwritable benchjson path accepted")
	}
}

func TestScheduleList(t *testing.T) {
	out, err := capture(t, "-schedule", "list")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"decay", "robust-fastbc", "star-coding", "wct-routing", "transformed-path-coding"} {
		if !strings.Contains(out, name) {
			t.Fatalf("schedule list missing %s:\n%s", name, out)
		}
	}
}

func TestScheduleRun(t *testing.T) {
	out, err := capture(t, "-schedule", "decay", "-n", "32", "-trials", "8", "-p", "0.2", "-fault", "receiver", "-seed", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"schedule: decay", "success: 8/8", "rounds: mean", "plan: engine"} {
		if !strings.Contains(out, want) {
			t.Fatalf("schedule run output missing %q:\n%s", want, out)
		}
	}
}

func TestScheduleRunMulti(t *testing.T) {
	out, err := capture(t, "-schedule", "single-link-coding", "-k", "16", "-trials", "10", "-p", "0.5", "-fault", "receiver")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "throughput:") {
		t.Fatalf("multi-message schedule run missing throughput:\n%s", out)
	}
}

func TestScheduleRunValidation(t *testing.T) {
	if _, err := capture(t, "-schedule", "bogus"); err == nil {
		t.Fatal("unknown schedule accepted")
	}
	if _, err := capture(t, "-schedule", "decay", "-n", "1"); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := capture(t, "-schedule", "rlnc", "-k", "0"); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestTrialBatchFlagValidation(t *testing.T) {
	for _, bad := range []string{"x", "-2", "65", "8.5"} {
		if _, err := capture(t, "-exp", "F1", "-quick", "-trialbatch", bad); err == nil {
			t.Fatalf("-trialbatch %q accepted", bad)
		}
	}
}

// The trial-batch plan must not change any output byte: auto, forced
// scalar and forced widths all produce identical tables.
func TestTrialBatchAutoOutputsIdentical(t *testing.T) {
	base, err := capture(t, "-exp", "E3", "-quick", "-seed", "3", "-json", "-trialbatch", "0")
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []string{"auto", "4", "8", "16"} {
		got, err := capture(t, "-exp", "E3", "-quick", "-seed", "3", "-json", "-trialbatch", tb)
		if err != nil {
			t.Fatalf("-trialbatch %s: %v", tb, err)
		}
		if got != base {
			t.Fatalf("-trialbatch %s changed experiment output", tb)
		}
	}
}

// The bench report must record the execution plans chosen under auto.
func TestBenchJSONRecordsPlans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if _, err := capture(t, "-exp", "E3", "-quick", "-seed", "1", "-trialbatch", "auto", "-benchjson", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchreport.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.TrialBatch != -1 {
		t.Fatalf("report trialbatch = %d, want -1 (auto)", rep.TrialBatch)
	}
	if len(rep.Plans) == 0 {
		t.Fatalf("report records no plans: %+v", rep)
	}
	for _, p := range rep.Plans {
		if p.Schedule == "" || p.Engine == "" || p.Width < 1 || p.Count < 1 || p.Reason == "" {
			t.Fatalf("malformed plan entry: %+v", p)
		}
	}
}
