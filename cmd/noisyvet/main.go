// Command noisyvet is the repository's invariant checker: a
// multichecker-style driver for the internal/lint analyzer suite
// (deterministic, drawcontract, poolpair, registry). It runs two ways:
//
//	noisyvet ./...                        direct: load, check, report
//	go vet -vettool=$(pwd)/noisyvet ./... under go vet's unitchecker protocol
//
// Exit codes: 0 = clean, 1 = findings reported, 2 = usage or load error.
// -json emits one JSON object per finding on stdout instead of the plain
// file:line:col lines on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"noisyradio/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire form of one finding, one object per
// line.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	// go vet's handshakes arrive before normal flag parsing: -V=full asks
	// for a version line, -flags for the supported flag set.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		if args[0] != "-V=full" {
			fmt.Fprintf(stderr, "noisyvet: unsupported version flag %s\n", args[0])
			return 2
		}
		fmt.Fprintln(stdout, "noisyvet version devel buildID=noisyvet")
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		return printVetFlags(stdout)
	}

	fs := flag.NewFlagSet("noisyvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON objects, one per line, on stdout")
	list := fs.Bool("list", false, "list the analyzers and exit")
	runSel := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("dir", ".", "directory to resolve package patterns from")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: noisyvet [-json] [-run a,b] [-dir d] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := selectAnalyzers(*runSel)
	if err != nil {
		fmt.Fprintf(stderr, "noisyvet: %v\n", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s\n\t%s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n\t"))
		}
		return 0
	}

	pos := fs.Args()
	if len(pos) == 1 && strings.HasSuffix(pos[0], ".cfg") {
		return runVettool(pos[0], *jsonOut, analyzers, stdout, stderr)
	}
	if len(pos) == 0 {
		fs.Usage()
		return 2
	}

	pkgs, err := lint.Load(*dir, pos...)
	if err != nil {
		fmt.Fprintf(stderr, "noisyvet: %v\n", err)
		return 2
	}
	total := 0
	for _, pkg := range pkgs {
		n, err := analyze(pkg, analyzers, *jsonOut, stdout, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "noisyvet: %v\n", err)
			return 2
		}
		total += n
	}
	if total > 0 {
		return 1
	}
	return 0
}

// analyze runs the selected analyzers over one package and prints the
// findings; it returns how many were reported.
func analyze(pkg *lint.Package, analyzers []*lint.Analyzer, jsonOut bool, stdout, stderr io.Writer) (int, error) {
	n := 0
	for _, a := range analyzers {
		diags, err := lint.Run(a, pkg)
		if err != nil {
			return n, err
		}
		for _, d := range diags {
			n++
			if jsonOut {
				enc, err := json.Marshal(jsonDiagnostic{
					File:     d.Pos.Filename,
					Line:     d.Pos.Line,
					Column:   d.Pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
				if err != nil {
					return n, err
				}
				fmt.Fprintln(stdout, string(enc))
			} else {
				fmt.Fprintln(stderr, d.String())
			}
		}
	}
	return n, nil
}

// selectAnalyzers resolves a -run selector against the suite.
func selectAnalyzers(sel string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if sel == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, len(all))
			for i, a := range all {
				known[i] = a.Name
			}
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// printVetFlags answers go vet's -flags handshake: the JSON description
// of the flags the tool accepts.
func printVetFlags(stdout io.Writer) int {
	type vetFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	flags := []vetFlag{
		{Name: "json", Bool: true, Usage: "emit findings as JSON"},
	}
	enc, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		return 2
	}
	fmt.Fprintln(stdout, string(enc))
	return 0
}
