package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// run wraps the package-level run with captured output.
func runCaptured(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListExitsZero(t *testing.T) {
	code, stdout, _ := runCaptured(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d, want 0", code)
	}
	for _, name := range []string{"deterministic", "drawcontract", "poolpair", "registry"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout)
		}
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	code, _, stderr := runCaptured(t, "-run", "nosuch", "./...")
	if code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr does not name the unknown analyzer: %s", stderr)
	}
}

func TestNoPackagesExitsTwo(t *testing.T) {
	code, _, _ := runCaptured(t)
	if code != 2 {
		t.Fatalf("no packages: exit %d, want 2", code)
	}
}

func TestVersionHandshake(t *testing.T) {
	code, stdout, _ := runCaptured(t, "-V=full")
	if code != 0 {
		t.Fatalf("-V=full: exit %d, want 0", code)
	}
	// go vet requires at least "name version fingerprint".
	if fields := strings.Fields(stdout); len(fields) < 3 || fields[0] != "noisyvet" {
		t.Errorf("-V=full output %q does not satisfy the vet handshake", stdout)
	}
}

func TestDirtyModuleExitsOne(t *testing.T) {
	code, _, stderr := runCaptured(t, "-dir", filepath.Join("testdata", "src", "dirty"), "./...")
	if code != 1 {
		t.Fatalf("dirty module: exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "time.Now in a deterministic plane") {
		t.Errorf("dirty module findings missing the seeded violation: %s", stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCaptured(t, "-json", "-dir", filepath.Join("testdata", "src", "dirty"), "./...")
	if code != 1 {
		t.Fatalf("dirty module -json: exit %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("-json produced no findings on stdout")
	}
	for _, line := range lines {
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("-json line %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("-json finding with empty fields: %+v", d)
		}
	}
}

// TestTreeClean is the acceptance smoke test: the full suite over the
// whole repository must be clean.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree typecheck in -short mode")
	}
	code, _, stderr := runCaptured(t, "-dir", filepath.Join("..", ".."), "./...")
	if code != 0 {
		t.Fatalf("noisyvet ./... not clean (exit %d):\n%s", code, stderr)
	}
}

// TestVettoolProtocol runs the real `go vet -vettool` pipeline against
// the dirty module and expects the seeded finding.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "noisyvet")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building noisyvet: %v\n%s", err, out)
	}
	dirty, err := filepath.Abs(filepath.Join("testdata", "src", "dirty"))
	if err != nil {
		t.Fatal(err)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = dirty
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on the dirty module succeeded; want failure\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("go vet -vettool did not run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "time.Now in a deterministic plane") {
		t.Errorf("vettool output missing the seeded finding:\n%s", out)
	}
	// And the clean path: vet over a package with no findings exits 0.
	clean := exec.Command("go", "vet", "-vettool="+bin, "./internal/rng/")
	clean.Dir = repoRoot(t)
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on a clean package failed: %v\n%s", err, out)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}
