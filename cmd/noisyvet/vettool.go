package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"

	"noisyradio/internal/lint"
)

// vetConfig is the .cfg file cmd/go hands a -vettool for each package:
// the file set to check plus an export-data map for resolving imports.
// The field set mirrors x/tools' unitchecker.Config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVettool executes one unit of go vet's -vettool protocol: read the
// .cfg, write the (empty) facts file cmd/go expects, and — unless the
// package was listed only as a dependency (VetxOnly) — type-check from
// the export data cmd/go already compiled and run the analyzer suite.
func runVettool(cfgPath string, jsonOut bool, analyzers []*lint.Analyzer, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "noisyvet: reading vet config: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "noisyvet: parsing vet config %s: %v\n", cfgPath, err)
		return 2
	}
	// cmd/go requires the facts file to exist even though noisyvet's
	// analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("noisyvet/facts v0\n"), 0o666); err != nil {
			fmt.Fprintf(stderr, "noisyvet: writing facts file: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if remapped, ok := cfg.ImportMap[path]; ok {
			path = remapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, lookup)

	files := make([]string, len(cfg.GoFiles))
	for i, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files[i] = f
	}
	pkg, err := lint.CheckFiles(fset, cfg.ImportPath, cfg.Dir, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "noisyvet: %v\n", err)
		return 1
	}
	n, err := analyze(pkg, analyzers, jsonOut, stdout, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "noisyvet: %v\n", err)
		return 2
	}
	if n > 0 {
		return 1
	}
	return 0
}
