// Package sim is a deliberately dirty deterministic-plane package for
// exercising noisyvet's nonzero exit paths.
package sim

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
