package noisyradio_test

import (
	"fmt"

	"noisyradio"
)

// Broadcast a single message through a noisy grid with the paper's new
// Robust FASTBC algorithm.
func ExampleRobustFASTBC() {
	top := noisyradio.Grid(8, 8)
	cfg := noisyradio.Config{Fault: noisyradio.ReceiverFaults, P: 0.3}
	res, err := noisyradio.RobustFASTBC(top, cfg, noisyradio.NewRand(1),
		noisyradio.Options{}, noisyradio.RobustParams{})
	if err != nil {
		panic(err)
	}
	fmt.Println("success:", res.Success)
	fmt.Println("all informed:", res.Informed == top.G.N())
	// Output:
	// success: true
	// all informed: true
}

// Decay needs no topology knowledge and survives noise as-is (Lemma 9).
func ExampleDecay() {
	top := noisyradio.Path(32)
	res, err := noisyradio.Decay(top, noisyradio.Config{Fault: noisyradio.SenderFaults, P: 0.2},
		noisyradio.NewRand(7), noisyradio.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("success:", res.Success)
	// Output:
	// success: true
}

// Multi-message broadcast with random linear network coding (Lemma 12):
// every node decodes all k messages; payloads survive bit-for-bit.
func ExampleRLNCBroadcast() {
	top := noisyradio.Star(6)
	r := noisyradio.NewRand(3)
	msgs := noisyradio.RandomMessages(4, 8, r)
	res, decoded, err := noisyradio.RLNCBroadcast(top,
		noisyradio.Config{Fault: noisyradio.ReceiverFaults, P: 0.25}, msgs, noisyradio.RLNCDecay,
		r, noisyradio.RLNCOptions{})
	if err != nil {
		panic(err)
	}
	intact := res.Success
	for i := range msgs {
		for j := range msgs[i] {
			if decoded[i][j] != msgs[i][j] {
				intact = false
			}
		}
	}
	fmt.Println("decoded intact:", intact)
	// Output:
	// decoded intact: true
}

// The Theorem 17 star gap in three lines: coding finishes far ahead of the
// best adaptive routing under receiver faults.
func ExampleStarCoding() {
	cfg := noisyradio.Config{Fault: noisyradio.ReceiverFaults, P: 0.5}
	routing, _ := noisyradio.StarRouting(512, 32, cfg, noisyradio.NewRand(4), noisyradio.Options{})
	coding, _ := noisyradio.StarCoding(512, 32, cfg, noisyradio.NewRand(4), noisyradio.Options{})
	fmt.Println("coding faster:", coding.Rounds < routing.Rounds/2)
	// Output:
	// coding faster: true
}

// Build the worst-case topology of Section 5.1.2 and check the Lemma 18
// structure: everything sits within two hops of the source.
func ExampleNewWCT() {
	w := noisyradio.NewWCT(noisyradio.DefaultWCTParams(512), noisyradio.NewRand(5))
	fmt.Println("radius:", w.G.Eccentricity(w.Source))
	fmt.Println("has clusters:", w.NumClusters() > 0)
	// Output:
	// radius: 2
	// has clusters: true
}

// Run a registered experiment programmatically.
func ExampleRunExperiment() {
	tbl, err := noisyradio.RunExperiment("F2", noisyradio.ExperimentConfig{Quick: true, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(tbl.ID, "rows:", len(tbl.Rows) > 0)
	// Output:
	// F2 rows: true
}
